package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repchain/internal/identity"
	"repchain/internal/network"
	"repchain/internal/node"
)

// runIndexed executes fn(0..n-1) across at most `workers` goroutines.
// With workers ≤ 1 it degenerates to the plain sequential loop, so the
// single-worker engine follows exactly the code path it always has.
//
// Error semantics are deterministic under any schedule: the returned
// error is the one produced by the lowest failing index, and once any
// fn fails the pool stops claiming new indices (mirroring the
// sequential early exit as closely as a parallel schedule can).
func runIndexed(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next, failed int64
	next = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for atomic.LoadInt64(&failed) == 0 {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					atomic.StoreInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// resolveWorkers turns a Config.Workers value into an effective pool
// size: non-positive means one worker per logical CPU.
func resolveWorkers(w int) int {
	if w <= 0 {
		//repchain:dettaint-ok the pool size only sets concurrency; sendBuffer flushes in node-index order, keeping the pipeline byte-identical for any worker count
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// bufferedSend is one queued Multicast call.
type bufferedSend struct {
	from    identity.NodeID
	to      []identity.NodeID
	kind    string
	payload []byte
}

// sendBuffer implements node.Sender by queueing instead of sending.
// Nodes processed off the engine goroutine write into private buffers;
// the engine then flushes the buffers onto the bus in node-index
// order, so the bus assigns the exact sequence numbers the fully
// sequential engine would have. This is what keeps the parallel
// pipeline byte-identical to the sequential one: the bus realizes
// total-order broadcast, and the replayed order is the total order.
type sendBuffer struct {
	msgs []bufferedSend
}

var _ node.Sender = (*sendBuffer)(nil)

// Multicast implements node.Sender. The recipient slice is retained,
// not copied — every caller in this package passes slices it never
// mutates (governor/collector ID lists).
func (b *sendBuffer) Multicast(from identity.NodeID, to []identity.NodeID, kind string, payload []byte) error {
	b.msgs = append(b.msgs, bufferedSend{from: from, to: to, kind: kind, payload: payload})
	return nil
}

// flush replays the buffered sends onto the bus in queue order.
func (b *sendBuffer) flush(bus *network.Bus) error {
	for _, m := range b.msgs {
		if err := bus.Multicast(m.from, m.to, m.kind, m.payload); err != nil {
			return err
		}
	}
	return nil
}
