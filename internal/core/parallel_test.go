package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repchain/internal/crypto"
)

// roundTrace captures everything observable about one run that could
// diverge under a schedule-dependent bug: per-round block hashes and
// leaders, the final stake vector, and every governor's full reputation
// snapshot.
type roundTrace struct {
	hashes    []crypto.Hash
	leaders   []int
	stakes    []uint64
	snapshots [][]byte
}

// runTrace executes `rounds` rounds with mixed valid/invalid traffic
// and one stake transfer, under the given seed and worker count.
func runTrace(t *testing.T, seed int64, workers, rounds int) roundTrace {
	t.Helper()
	cfg := defaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Stakes = []uint64{3, 2, 1}
	// Tracing on: the determinism gate must hold with the span
	// recorder active, proving instrumentation is purely observational.
	cfg.TraceCapacity = 4096
	e := newTestEngine(t, cfg)
	var tr roundTrace
	for r := 0; r < rounds; r++ {
		submitRound(t, e, 12, r, 3)
		if r == 1 {
			if err := e.SubmitStakeTransfer(0, 2, 1); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("seed %d workers %d round %d: %v", seed, workers, r, err)
		}
		tr.hashes = append(tr.hashes, res.Block.Hash())
		tr.leaders = append(tr.leaders, res.Leader)
	}
	tr.stakes = e.StakeLedger().Snapshot()
	for j := 0; j < e.Governors(); j++ {
		tr.snapshots = append(tr.snapshots, e.Governor(j).Table().Snapshot())
	}
	return tr
}

// TestParallelMatchesSequential is the tentpole's determinism gate: the
// pipeline must be byte-identical at every worker count. Block hashes
// transitively commit to screening decisions and records; leaders to
// the VRF election; reputation snapshots to every weight update.
func TestParallelMatchesSequential(t *testing.T) {
	const rounds = 5
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := runTrace(t, seed, 1, rounds)
			for _, workers := range []int{4, 8} {
				got := runTrace(t, seed, workers, rounds)
				for r := range want.hashes {
					if got.hashes[r] != want.hashes[r] {
						t.Fatalf("workers=%d round %d block hash %s, sequential %s",
							workers, r, got.hashes[r].Short(), want.hashes[r].Short())
					}
					if got.leaders[r] != want.leaders[r] {
						t.Fatalf("workers=%d round %d leader %d, sequential %d",
							workers, r, got.leaders[r], want.leaders[r])
					}
				}
				for j := range want.stakes {
					if got.stakes[j] != want.stakes[j] {
						t.Fatalf("workers=%d stakes %v, sequential %v", workers, got.stakes, want.stakes)
					}
				}
				for j := range want.snapshots {
					if !bytes.Equal(got.snapshots[j], want.snapshots[j]) {
						t.Fatalf("workers=%d governor %d reputation snapshot diverged from sequential", workers, j)
					}
				}
			}
		})
	}
}

// TestStakeNoncesSurviveRounds pins the nonce-reuse fix: identical
// transfers issued in different rounds must sign distinct bytes.
func TestStakeNoncesSurviveRounds(t *testing.T) {
	cfg := defaultConfig()
	cfg.Stakes = []uint64{6, 1, 1}
	e := newTestEngine(t, cfg)
	var nonces []uint64
	var sigs [][]byte
	for r := 0; r < 3; r++ {
		if err := e.SubmitStakeTransfer(0, 1, 1); err != nil {
			t.Fatal(err)
		}
		stx := e.pendingStakeTxs[len(e.pendingStakeTxs)-1]
		nonces = append(nonces, stx.Nonce)
		sigs = append(sigs, stx.Sig)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(nonces); i++ {
		if nonces[i] == nonces[0] {
			t.Fatalf("nonce %d of round %d repeats round 0's: replayable transfer", nonces[i], i)
		}
		if bytes.Equal(sigs[i], sigs[0]) {
			t.Fatalf("round %d transfer signs the same bytes as round 0", i)
		}
	}
}

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		var hits [n]int64
		if err := runIndexed(workers, n, func(i int) error {
			atomic.AddInt64(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestRunIndexedReturnsLowestIndexError(t *testing.T) {
	errAt := func(bad ...int) func(int) error {
		set := make(map[int]bool)
		for _, b := range bad {
			set[b] = true
		}
		return func(i int) error {
			if set[i] {
				return fmt.Errorf("index %d failed", i)
			}
			return nil
		}
	}
	for _, workers := range []int{1, 4} {
		err := runIndexed(workers, 50, errAt(31, 7, 44))
		if err == nil || err.Error() != "index 7 failed" {
			t.Fatalf("workers=%d error = %v, want lowest failing index 7", workers, err)
		}
	}
}

func TestRunIndexedStopsEarlyOnFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	err := runIndexed(4, 10_000, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if got := atomic.LoadInt64(&ran); got == 10_000 {
		t.Fatal("pool kept claiming indices after a failure")
	}
}

func TestRunIndexedEmptyAndSingle(t *testing.T) {
	if err := runIndexed(8, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("n=0 error = %v", err)
	}
	ran := 0
	if err := runIndexed(8, 1, func(i int) error { ran++; return nil }); err != nil || ran != 1 {
		t.Fatalf("n=1 ran %d times, err %v", ran, err)
	}
}

func TestWorkersAccessorAndResolve(t *testing.T) {
	cfg := defaultConfig()
	cfg.Workers = 3
	e := newTestEngine(t, cfg)
	if e.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", e.Workers())
	}
	if resolveWorkers(0) < 1 || resolveWorkers(-5) < 1 {
		t.Fatal("resolveWorkers must return at least one worker")
	}
	if resolveWorkers(7) != 7 {
		t.Fatal("resolveWorkers must pass positive values through")
	}
}
