package core

import (
	"errors"
	"fmt"
	"testing"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/node"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

// oracleValidator implements validate(tx) for tests: a transaction is
// valid iff its first payload byte is 1. Providers set the byte, so
// ground truth is shared by construction.
var oracleValidator = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func payloadFor(valid bool, n int) []byte {
	b := byte(0)
	if valid {
		b = 1
	}
	return []byte{b, byte(n), byte(n >> 8)}
}

func defaultConfig() Config {
	return Config{
		Spec:        identity.TopologySpec{Providers: 4, Collectors: 4, Degree: 2},
		Governors:   3,
		Params:      reputation.DefaultParams(),
		BlockLimit:  0,
		ArgueWindow: 16,
		MaxDelay:    2,
		Seed:        42,
		Validator:   oracleValidator,
	}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	return e
}

// submitRound submits n transactions spread across providers, with
// validFrac of them valid, and returns the submitted IDs with their
// ground truth.
func submitRound(t *testing.T, e *Engine, n int, round int, invalidEvery int) map[crypto.Hash]bool {
	t.Helper()
	out := make(map[crypto.Hash]bool, n)
	providers := e.Roster().Topology.Providers()
	for i := 0; i < n; i++ {
		valid := invalidEvery == 0 || (i%invalidEvery != invalidEvery-1)
		signed, err := e.SubmitTx(i%providers, "test/tx", payloadFor(valid, round*1000+i), valid)
		if err != nil {
			t.Fatalf("SubmitTx() error = %v", err)
		}
		out[signed.ID()] = valid
	}
	return out
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero governors", func(c *Config) { c.Governors = 0 }},
		{"nil validator", func(c *Config) { c.Validator = nil }},
		{"bad params", func(c *Config) { c.Params.F = 2 }},
		{"bad topology", func(c *Config) { c.Spec.Degree = 99 }},
		{"behaviour count", func(c *Config) { c.Behaviors = []node.Behavior{nil} }},
		{"stake count", func(c *Config) { c.Stakes = []uint64{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := defaultConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("New() accepted invalid config")
			}
		})
	}
}

func TestEngineRunsRounds(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	const rounds = 8
	for r := 0; r < rounds; r++ {
		submitRound(t, e, 12, r, 4)
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("RunRound(%d) error = %v", r, err)
		}
		if res.Serial != uint64(r+1) {
			t.Fatalf("round %d produced serial %d", r, res.Serial)
		}
		if res.Leader < 0 || res.Leader >= e.Governors() {
			t.Fatalf("leader %d out of range", res.Leader)
		}
	}
	if e.Round() != rounds {
		t.Fatalf("Round() = %d", e.Round())
	}
	for j := 0; j < e.Governors(); j++ {
		if got := e.Governor(j).Store().Height(); got != rounds {
			t.Fatalf("governor %d height = %d, want %d", j, got, rounds)
		}
	}
}

// TestPropertyAgreement (P1): any two replicas retrieve identical
// blocks for every serial number.
func TestPropertyAgreement(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	for r := 0; r < 5; r++ {
		submitRound(t, e, 10, r, 3)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	ref := e.Governor(0).Store()
	for j := 1; j < e.Governors(); j++ {
		other := e.Governor(j).Store()
		if other.Height() != ref.Height() {
			t.Fatalf("governor %d height %d, governor 0 height %d", j, other.Height(), ref.Height())
		}
		for s := uint64(1); s <= ref.Height(); s++ {
			a, err := ref.Get(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := other.Get(s)
			if err != nil {
				t.Fatal(err)
			}
			if a.Hash() != b.Hash() {
				t.Fatalf("Agreement violated at serial %d between governors 0 and %d", s, j)
			}
		}
	}
}

// TestPropertyChainIntegrityAndNoSkipping (P2, P3): hash links hold
// and serials increase one by one from 1.
func TestPropertyChainIntegrityAndNoSkipping(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	for r := 0; r < 6; r++ {
		submitRound(t, e, 8, r, 4)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < e.Governors(); j++ {
		store := e.Governor(j).Store()
		if err := ledger.VerifyChain(store); err != nil {
			t.Fatalf("governor %d chain: %v", j, err)
		}
		var prev crypto.Hash
		for s := uint64(1); s <= store.Height(); s++ {
			b, err := store.Get(s)
			if err != nil {
				t.Fatalf("No Skipping violated: %v", err)
			}
			if b.Serial != s {
				t.Fatalf("serial %d at position %d", b.Serial, s)
			}
			if b.PrevHash != prev {
				t.Fatalf("Chain Integrity violated at serial %d", s)
			}
			prev = b.Hash()
		}
	}
}

// TestPropertyAlmostNoCreation (P4): every transaction in the chain
// was broadcast by a registered provider (here: submitted through the
// engine), and forged uploads never enter the chain.
func TestPropertyAlmostNoCreation(t *testing.T) {
	cfg := defaultConfig()
	// Collector 0 forges aggressively.
	cfg.Behaviors = []node.Behavior{
		node.ProbBehavior{Forge: 1},
		nil, nil, nil,
	}
	e := newTestEngine(t, cfg)
	submitted := make(map[crypto.Hash]bool)
	for r := 0; r < 6; r++ {
		for id := range submitRound(t, e, 10, r, 4) {
			submitted[id] = true
		}
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	store := e.Governor(0).Store()
	for s := uint64(1); s <= store.Height(); s++ {
		b, err := store.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range b.Records {
			if !submitted[rec.Signed.ID()] {
				t.Fatalf("block %d contains unsubmitted transaction %s: creation!", s, rec.Signed.ID().Short())
			}
		}
	}
	// The forging collector must have been penalized.
	if got := e.Governor(0).Table().Forge(0); got >= 0 {
		t.Fatalf("forging collector's forge score = %v, want negative", got)
	}
	if e.Governor(0).Stats().ForgeriesDetected == 0 {
		t.Fatal("no forgeries detected despite a forging collector")
	}
}

// TestPropertyValidity (P5): every valid transaction from an active
// provider eventually appears valid in a block, even when most
// collectors misreport — the argue path recovers it.
func TestPropertyValidity(t *testing.T) {
	cfg := defaultConfig()
	cfg.Params.F = 0.9 // aggressive skipping: many unchecked
	// Three of four collectors always lie; collector 3 is honest.
	cfg.Behaviors = []node.Behavior{
		node.ProbBehavior{Misreport: 1},
		node.ProbBehavior{Misreport: 1},
		node.ProbBehavior{Misreport: 1},
		nil,
	}
	e := newTestEngine(t, cfg)
	for r := 0; r < 4; r++ {
		submitRound(t, e, 12, r, 0) // all valid
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Drain rounds with no new submissions so argues resolve.
	for r := 0; r < 6; r++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < e.Roster().Topology.Providers(); k++ {
		if pending := e.Provider(k).PendingValid(); pending != 0 {
			t.Fatalf("provider %d still has %d valid transactions unsettled: Validity violated", k, pending)
		}
	}
}

func TestArgueRestoresTransactionsAndPunishesLiars(t *testing.T) {
	cfg := defaultConfig()
	cfg.Spec = identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 4}
	cfg.Params.F = 0.9
	cfg.Behaviors = []node.Behavior{
		node.ProbBehavior{Misreport: 1}, // always lies
		node.ProbBehavior{Misreport: 1},
		node.ProbBehavior{Misreport: 1},
		nil, // honest
	}
	e := newTestEngine(t, cfg)
	for r := 0; r < 6; r++ {
		submitRound(t, e, 10, r, 0)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	gov := e.Governor(0)
	if gov.Stats().ArguesAccepted == 0 {
		t.Fatal("no argues were accepted; the recovery path never ran")
	}
	// After reveals, the liars' weights must be below the honest
	// collector's for every provider they share.
	tab := gov.Table()
	for k := 0; k < 2; k++ {
		honest, err := tab.Weight(k, 3)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			liar, err := tab.Weight(k, c)
			if err != nil {
				t.Fatal(err)
			}
			if liar >= honest {
				t.Fatalf("provider %d: liar %d weight %v ≥ honest weight %v", k, c, liar, honest)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []crypto.Hash {
		e := newTestEngine(t, defaultConfig())
		var hashes []crypto.Hash
		for r := 0; r < 4; r++ {
			submitRound(t, e, 8, r, 3)
			res, err := e.RunRound()
			if err != nil {
				t.Fatal(err)
			}
			hashes = append(hashes, res.Block.Hash())
		}
		return hashes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d produced different blocks across identical runs", i)
		}
	}
}

func TestBlockLimitCarryover(t *testing.T) {
	cfg := defaultConfig()
	cfg.BlockLimit = 5
	e := newTestEngine(t, cfg)
	submitRound(t, e, 20, 0, 0) // 20 valid txs, blimit 5
	seen := 0
	for r := 0; r < 6; r++ {
		res, err := e.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Block.Records) > 5 {
			t.Fatalf("block %d has %d records, limit 5", res.Serial, len(res.Block.Records))
		}
		seen += len(res.Block.Records)
	}
	if seen < 15 {
		t.Fatalf("only %d records committed across 6 rounds; carryover broken", seen)
	}
}

func TestStakeTransform(t *testing.T) {
	cfg := defaultConfig()
	cfg.Stakes = []uint64{5, 3, 2}
	e := newTestEngine(t, cfg)
	if err := e.SubmitStakeTransfer(0, 2, 2); err != nil {
		t.Fatalf("SubmitStakeTransfer() error = %v", err)
	}
	submitRound(t, e, 5, 0, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.StakeBlock == nil {
		t.Fatal("no stake block committed")
	}
	want := []uint64{3, 3, 4}
	got := e.StakeLedger().Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stake state = %v, want %v", got, want)
		}
	}
	if len(res.StakeBlock.Endorsements) != 3 {
		t.Fatalf("stake block has %d endorsements, want 3", len(res.StakeBlock.Endorsements))
	}
}

func TestLeaderExpulsion(t *testing.T) {
	cfg := defaultConfig()
	cfg.Stakes = []uint64{4, 4, 4}
	e := newTestEngine(t, cfg)
	e.CorruptNextStakeProposal()
	if err := e.SubmitStakeTransfer(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	submitRound(t, e, 5, 0, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatalf("RunRound() error = %v", err)
	}
	// The transform must still commit (under a re-elected leader) and
	// the transfer must have applied exactly once.
	if res.StakeBlock == nil {
		t.Fatal("stake transform did not recover from expulsion")
	}
	got := e.StakeLedger().Snapshot()
	if got[1] != 3 || got[2] != 5 {
		t.Fatalf("stake state = %v", got)
	}
	// Exactly one governor is expelled: the corrupt round-leader.
	expelledCount := 0
	for _, ex := range e.expelled {
		if ex {
			expelledCount++
		}
	}
	if expelledCount != 1 {
		t.Fatalf("%d governors expelled, want 1", expelledCount)
	}
	// Subsequent rounds still work, and the expelled governor never
	// leads again.
	var expelledIdx int
	for j, ex := range e.expelled {
		if ex {
			expelledIdx = j
		}
	}
	for r := 0; r < 8; r++ {
		submitRound(t, e, 4, r+1, 0)
		res, err := e.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if res.Leader == expelledIdx {
			t.Fatalf("expelled governor %d led round %d", expelledIdx, res.Serial)
		}
	}
}

func TestRevenueSharesFavourHonestUnderAdversaries(t *testing.T) {
	cfg := defaultConfig()
	cfg.Spec = identity.TopologySpec{Providers: 4, Collectors: 4, Degree: 4}
	cfg.Behaviors = []node.Behavior{
		nil,
		node.ProbBehavior{Misreport: 0.5},
		node.ProbBehavior{Conceal: 0.5},
		node.ProbBehavior{Forge: 0.8},
	}
	e := newTestEngine(t, cfg)
	for r := 0; r < 10; r++ {
		submitRound(t, e, 16, r, 3)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	shares, err := e.Governor(0).Table().RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < 4; c++ {
		if shares[c] >= shares[0] {
			t.Fatalf("misbehaving collector %d share %.4f ≥ honest share %.4f", c, shares[c], shares[0])
		}
	}
}

func TestSubmitTxValidation(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	if _, err := e.SubmitTx(99, "k", nil, true); !errors.Is(err, ErrUnknownProvider) {
		t.Fatalf("SubmitTx(99) error = %v, want ErrUnknownProvider", err)
	}
	if err := e.SubmitStakeTransfer(-1, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SubmitStakeTransfer(-1) error = %v, want ErrBadConfig", err)
	}
}

func TestEmptyRoundsStillCommitBlocks(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	for r := 0; r < 3; r++ {
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("empty RunRound() error = %v", err)
		}
		if len(res.Block.Records) != 0 {
			t.Fatalf("empty round produced %d records", len(res.Block.Records))
		}
	}
	if e.Governor(0).Store().Height() != 3 {
		t.Fatal("empty rounds did not extend the chain")
	}
}

func TestLeaderRotation(t *testing.T) {
	cfg := defaultConfig()
	cfg.Governors = 4
	cfg.Stakes = []uint64{2, 2, 2, 2}
	e := newTestEngine(t, cfg)
	leaders := make(map[int]int)
	for r := 0; r < 24; r++ {
		res, err := e.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		leaders[res.Leader]++
	}
	if len(leaders) < 2 {
		t.Fatalf("leadership never rotated: %v", leaders)
	}
}

func TestUploadsCounted(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	submitRound(t, e, 10, 0, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// 10 txs, each reaching 2 collectors → 20 uploads with honest
	// collectors.
	if res.Uploads != 20 {
		t.Fatalf("Uploads = %d, want 20", res.Uploads)
	}
}

func TestGovernorStatsAccumulate(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	for r := 0; r < 5; r++ {
		submitRound(t, e, 10, r, 3)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Governor(0).Stats()
	if st.ReportsReceived == 0 || st.Checked == 0 {
		t.Fatalf("stats did not accumulate: %+v", st)
	}
	if st.ValidRecorded == 0 {
		t.Fatal("no valid transactions recorded")
	}
}

func ExampleEngine() {
	e, err := New(Config{
		Spec:        identity.TopologySpec{Providers: 2, Collectors: 2, Degree: 1},
		Governors:   2,
		Params:      reputation.DefaultParams(),
		ArgueWindow: 8,
		Seed:        1,
		Validator:   oracleValidator,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := e.SubmitTx(0, "example", []byte{1}, true); err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := e.RunRound()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("serial:", res.Serial, "records:", len(res.Block.Records))
	// Output: serial: 1 records: 1
}
