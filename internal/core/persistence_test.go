package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/node"
)

// TestPersistentChainSurvivesRestart runs an engine with file-backed
// governor replicas, restarts it, verifies the chain reloads, and
// confirms new blocks extend the persisted history.
func TestPersistentChainSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir

	e1 := newTestEngine(t, cfg)
	for r := 0; r < 4; r++ {
		submitRound(t, e1, 8, r, 3)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	headBefore, err := e1.Governor(0).Store().Head()
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatalf("Close() error = %v", err)
	}

	// Restart: same config, same directory.
	e2 := newTestEngine(t, cfg)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	for j := 0; j < e2.Governors(); j++ {
		store := e2.Governor(j).Store()
		if store.Height() != 4 {
			t.Fatalf("governor %d reloaded height %d, want 4", j, store.Height())
		}
		if err := ledger.VerifyChain(store); err != nil {
			t.Fatalf("governor %d reloaded chain: %v", j, err)
		}
	}
	head, err := e2.Governor(0).Store().Head()
	if err != nil {
		t.Fatal(err)
	}
	if head.Hash() != headBefore.Hash() {
		t.Fatal("restart changed the chain head")
	}

	// The restarted engine keeps extending the same chain.
	submitRound(t, e2, 6, 9, 0)
	res, err := e2.RunRound()
	if err != nil {
		t.Fatalf("post-restart RunRound() error = %v", err)
	}
	if res.Serial != 5 {
		t.Fatalf("post-restart serial = %d, want 5", res.Serial)
	}
	if res.Block.PrevHash != headBefore.Hash() {
		t.Fatal("post-restart block does not link to the persisted head")
	}
	for j := 0; j < e2.Governors(); j++ {
		if err := ledger.VerifyChain(e2.Governor(j).Store()); err != nil {
			t.Fatalf("governor %d extended chain: %v", j, err)
		}
	}
}

// TestReputationSurvivesRestart verifies that learned collector
// weights persist across an engine restart when ChainDir is set.
func TestReputationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir
	cfg.Spec = identity.TopologySpec{Providers: 2, Collectors: 4, Degree: 4}
	cfg.Params.F = 0.9
	cfg.Behaviors = []node.Behavior{
		node.ProbBehavior{Misreport: 1},
		nil, nil, nil,
	}

	e1 := newTestEngine(t, cfg)
	for r := 0; r < 6; r++ {
		submitRound(t, e1, 10, r, 0)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 4; r++ { // settle argues so reveals land
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	vecBefore, err := e1.Governor(0).Table().Vector(0)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Governor(0).Table().Misreport(0) == 0 {
		t.Fatal("liar's misreport score untouched before restart; test vacuous")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, cfg)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	vecAfter, err := e2.Governor(0).Table().Vector(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecAfter) != len(vecBefore) {
		t.Fatalf("vector length changed across restart: %d vs %d", len(vecAfter), len(vecBefore))
	}
	for i := range vecBefore {
		if vecAfter[i] != vecBefore[i] {
			t.Fatalf("reputation vector[%d] = %v after restart, want %v", i, vecAfter[i], vecBefore[i])
		}
	}
}

// TestRoundCounterAndSnapshotSurviveRestart pins the full restart
// contract: after Close and reopen, the round counter resumes from the
// persisted height (so VRF election inputs stay unique) and every
// governor's reputation snapshot is byte-identical to what was saved.
func TestRoundCounterAndSnapshotSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir

	e1 := newTestEngine(t, cfg)
	const rounds = 5
	for r := 0; r < rounds; r++ {
		submitRound(t, e1, 8, r, 3)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if e1.Round() != rounds {
		t.Fatalf("Round() = %d before restart, want %d", e1.Round(), rounds)
	}
	snapsBefore := make([][]byte, e1.Governors())
	for j := range snapsBefore {
		snapsBefore[j] = e1.Governor(j).Table().Snapshot()
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, cfg)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	if e2.Round() != rounds {
		t.Fatalf("Round() = %d after restart, want %d", e2.Round(), rounds)
	}
	for j := range snapsBefore {
		if !bytes.Equal(e2.Governor(j).Table().Snapshot(), snapsBefore[j]) {
			t.Fatalf("governor %d reputation snapshot changed across restart", j)
		}
	}
	res, err := e2.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.Serial != rounds+1 {
		t.Fatalf("first post-restart serial = %d, want %d", res.Serial, rounds+1)
	}
}

// TestCorruptReputationFileFailsRestart: a truncated or garbled
// governor-<j>.rep file must fail engine construction with a wrapped
// error naming the governor, not silently reset its learned weights.
func TestCorruptReputationFileFailsRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir

	e1 := newTestEngine(t, cfg)
	for r := 0; r < 3; r++ {
		submitRound(t, e1, 8, r, 3)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	repPath := filepath.Join(dir, "governor-1.rep")
	if _, err := os.Stat(repPath); err != nil {
		t.Fatalf("expected persisted reputation file: %v", err)
	}
	if err := os.WriteFile(repPath, []byte("not a reputation snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := New(cfg)
	if err == nil {
		t.Fatal("New() accepted a corrupted reputation snapshot")
	}
	if !strings.Contains(err.Error(), "governor 1") {
		t.Fatalf("error %q does not name the corrupt governor", err)
	}
}

// TestPersistentChainDeterministicAcrossBackends: the same seed and
// workload produce identical blocks whether replicas are in memory or
// on disk.
func TestPersistentChainDeterministicAcrossBackends(t *testing.T) {
	run := func(dir string) string {
		cfg := defaultConfig()
		cfg.ChainDir = dir
		e := newTestEngine(t, cfg)
		defer func() {
			if err := e.Close(); err != nil {
				t.Errorf("Close() error = %v", err)
			}
		}()
		for r := 0; r < 3; r++ {
			submitRound(t, e, 6, r, 3)
			if _, err := e.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		head, err := e.Governor(0).Store().Head()
		if err != nil {
			t.Fatal(err)
		}
		return head.Hash().String()
	}
	mem := run("")           // in-memory
	disk := run(t.TempDir()) // file-backed
	if mem != disk {
		t.Fatal("storage backend changed the chain contents")
	}
}

// TestSnapshotCadenceWritesAndPrunes drives an engine past several
// snapshot intervals with tiny segments and checks the cadence
// machinery end to end: snapshots land on disk, old segments are
// pruned, and the metrics counters move.
func TestSnapshotCadenceWritesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir
	cfg.SnapshotEvery = 2
	cfg.SegmentBytes = 1024

	e := newTestEngine(t, cfg)
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	for r := 0; r < 6; r++ {
		submitRound(t, e, 8, r, 3)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < e.Governors(); j++ {
		fs, ok := e.Governor(j).Store().(*ledger.FileStore)
		if !ok {
			t.Fatalf("governor %d store is not file-backed", j)
		}
		snap, found := fs.LatestSnapshot()
		if !found {
			t.Fatalf("governor %d has no ledger snapshot after 6 rounds at cadence 2", j)
		}
		if snap.Height != 6 {
			t.Fatalf("governor %d snapshot height = %d, want 6", j, snap.Height)
		}
		st, err := node.DecodeGovernorState(snap.App)
		if err != nil {
			t.Fatalf("governor %d snapshot app state: %v", j, err)
		}
		if st.Round != 6 {
			t.Fatalf("governor %d snapshot round = %d, want 6", j, st.Round)
		}
		if fs.FirstAvailable() <= 1 {
			t.Fatalf("governor %d FirstAvailable() = %d, want pruning to have moved it", j, fs.FirstAvailable())
		}
		if err := ledger.VerifyChain(fs); err != nil {
			t.Fatalf("governor %d pruned chain fails verification: %v", j, err)
		}
	}
	ms := e.Metrics().Snapshot()
	if ms.Counters["ledger.snapshots_total"] == 0 {
		t.Fatal("ledger.snapshots_total did not move")
	}
	if ms.Counters["ledger.segments_pruned_total"] == 0 {
		t.Fatal("ledger.segments_pruned_total did not move")
	}
}

// TestRestartFromSnapshotWithoutRepFile deletes the .rep sidecars
// after a snapshotting run — the crash model where only the chain
// directory survives — and verifies the restarted engine recovers
// reputation from the ledger snapshot and continues committing rounds
// identically to a node restored from .rep.
func TestRestartFromSnapshotWithoutRepFile(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir
	cfg.SnapshotEvery = 2

	e1 := newTestEngine(t, cfg)
	for r := 0; r < 4; r++ {
		submitRound(t, e1, 8, r, 3)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	wantRep := make([][]byte, e1.Governors())
	for j := 0; j < e1.Governors(); j++ {
		wantRep[j] = e1.Governor(j).Table().Snapshot()
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	reps, err := filepath.Glob(filepath.Join(dir, "governor-*.rep"))
	if err != nil || len(reps) == 0 {
		t.Fatalf("no .rep files to delete (err=%v)", err)
	}
	for _, p := range reps {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	e2 := newTestEngine(t, cfg)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	for j := 0; j < e2.Governors(); j++ {
		got := e2.Governor(j).Table().Snapshot()
		if !bytes.Equal(got, wantRep[j]) {
			t.Fatalf("governor %d reputation after snapshot-only restart differs from pre-restart state", j)
		}
	}
	if e2.Round() != 4 {
		t.Fatalf("restarted Round() = %d, want 4", e2.Round())
	}
	submitRound(t, e2, 6, 9, 0)
	res, err := e2.RunRound()
	if err != nil {
		t.Fatalf("post-restart RunRound() error = %v", err)
	}
	if res.Serial != 5 {
		t.Fatalf("post-restart serial = %d, want 5", res.Serial)
	}
}

// TestRestartAfterPruningStillVerifies makes sure a restart over a
// pruned chain directory (blocks 1..H gone, snapshot anchor present)
// opens, verifies, and extends.
func TestRestartAfterPruningStillVerifies(t *testing.T) {
	dir := t.TempDir()
	cfg := defaultConfig()
	cfg.ChainDir = dir
	cfg.SnapshotEvery = 2
	cfg.SegmentBytes = 512

	e1 := newTestEngine(t, cfg)
	for r := 0; r < 8; r++ {
		submitRound(t, e1, 8, r, 3)
		if _, err := e1.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	pruned := false
	for j := 0; j < e1.Governors(); j++ {
		if fs, ok := e1.Governor(j).Store().(*ledger.FileStore); ok && fs.FirstAvailable() > 1 {
			pruned = true
		}
	}
	if !pruned {
		t.Fatal("no governor pruned anything at 512-byte segments over 8 rounds")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, cfg)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Errorf("Close() error = %v", err)
		}
	}()
	for j := 0; j < e2.Governors(); j++ {
		store := e2.Governor(j).Store()
		if store.Height() != 8 {
			t.Fatalf("governor %d reloaded height %d, want 8", j, store.Height())
		}
		if err := ledger.VerifyChain(store); err != nil {
			t.Fatalf("governor %d pruned chain after restart: %v", j, err)
		}
	}
	submitRound(t, e2, 6, 9, 0)
	res, err := e2.RunRound()
	if err != nil {
		t.Fatalf("post-restart RunRound() error = %v", err)
	}
	if res.Serial != 9 {
		t.Fatalf("post-restart serial = %d, want 9", res.Serial)
	}
}
