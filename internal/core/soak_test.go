package core

import (
	"testing"

	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/node"
	"repchain/internal/tx"
)

// TestSoakHundredRounds is a long-run invariant check: 100 rounds with
// a mixed adversary population, block limits forcing carryover, stake
// transfers every few rounds, and every safety invariant re-verified
// at the end. It is the closest thing to a production burn-in the
// in-process stack has.
func TestSoakHundredRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak run")
	}
	cfg := Config{
		Spec:        identity.TopologySpec{Providers: 6, Collectors: 6, Degree: 3},
		Governors:   4,
		Stakes:      []uint64{4, 3, 2, 1},
		Params:      defaultConfig().Params,
		BlockLimit:  24,
		ArgueWindow: 32,
		MaxDelay:    2,
		Seed:        777,
		Validator:   oracleValidator,
		Behaviors: []node.Behavior{
			nil,
			node.ProbBehavior{Misreport: 0.3},
			node.ProbBehavior{Conceal: 0.4},
			node.ProbBehavior{Forge: 0.2},
			node.ProbBehavior{Misreport: 0.1, Conceal: 0.1},
			nil,
		},
	}
	cfg.Params.F = 0.7
	e := newTestEngine(t, cfg)

	const rounds = 100
	submitted := make(map[string]bool)
	leaders := make(map[int]int)
	for r := 0; r < rounds; r++ {
		for id := range submitRound(t, e, 18, r, 3) {
			submitted[id.String()] = true
		}
		if r%5 == 2 {
			from := r % 4
			to := (r + 1) % 4
			if s, err := e.StakeLedger().Of(from); err == nil && s > 0 {
				if err := e.SubmitStakeTransfer(from, to, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		leaders[res.Leader]++
	}
	// Drain argues.
	for r := 0; r < 10; r++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}

	// Invariants.
	for j := 0; j < e.Governors(); j++ {
		if err := ledger.VerifyChain(e.Governor(j).Store()); err != nil {
			t.Fatalf("governor %d chain: %v", j, err)
		}
	}
	// Agreement.
	ref := e.Governor(0).Store()
	for j := 1; j < e.Governors(); j++ {
		other := e.Governor(j).Store()
		if other.Height() != ref.Height() {
			t.Fatalf("heights diverged: %d vs %d", other.Height(), ref.Height())
		}
	}
	// Almost No Creation + no duplicate valid records, chain-wide.
	seenValid := make(map[string]bool)
	for s := uint64(1); s <= ref.Height(); s++ {
		b, err := ref.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Records) > cfg.BlockLimit {
			t.Fatalf("block %d exceeds b_limit: %d records", s, len(b.Records))
		}
		for _, rec := range b.Records {
			id := rec.Signed.ID().String()
			if !submitted[id] {
				t.Fatalf("block %d contains unsubmitted transaction", s)
			}
			if rec.Status == tx.StatusValid {
				if seenValid[id] {
					t.Fatalf("transaction %s recorded valid twice", id[:8])
				}
				seenValid[id] = true
			}
		}
	}
	// Validity: every provider's valid transactions settled.
	for k := 0; k < 6; k++ {
		if pending := e.Provider(k).PendingValid(); pending != 0 {
			t.Fatalf("provider %d has %d valid transactions unsettled after soak", k, pending)
		}
	}
	// Stake conservation.
	if total := e.StakeLedger().Total(); total != 10 {
		t.Fatalf("stake total = %d, want 10", total)
	}
	// Leadership rotated (4 governors, stake-weighted).
	if len(leaders) < 2 {
		t.Fatalf("leadership never rotated: %v", leaders)
	}
	// The forger was punished; honest collectors out-earn adversaries.
	tab := e.Governor(0).Table()
	if tab.Forge(3) >= 0 {
		t.Fatal("forger's forge score not negative after soak")
	}
	shares, err := tab.RevenueShares()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{1, 2, 3} {
		if shares[bad] >= shares[0] {
			t.Fatalf("adversary %d share %.4f ≥ honest share %.4f", bad, shares[bad], shares[0])
		}
	}
}
