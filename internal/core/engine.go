// Package core wires the paper's full protocol together: the identity
// manager, the synchronous bus, provider/collector/governor nodes, the
// reputation mechanism, PoS/VRF leader election, block production, and
// the stake-transform sub-protocol. One Engine is one alliance chain.
//
// A round follows §3.1's three phases:
//
//	Collecting  — providers broadcast signed transactions to their
//	              linked collectors (callers invoke SubmitTx before
//	              RunRound);
//	Uploading   — collectors label and upload to all governors;
//	Processing  — governors screen with the reputation mechanism,
//	              elect a leader by per-stake-unit VRF, and the leader
//	              proposes the block every replica appends. Providers
//	              observe the block and argue mislabeled transactions,
//	              which resolve in the next round.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repchain/internal/codec"
	"repchain/internal/consensus"
	"repchain/internal/crypto"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/mempool"
	"repchain/internal/metrics"
	"repchain/internal/network"
	"repchain/internal/node"
	"repchain/internal/reputation"
	"repchain/internal/trace"
	"repchain/internal/tx"
)

// Sentinel errors. Callers match with errors.Is.
var (
	// ErrBadConfig reports an invalid engine configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrDisagreement reports replicas disagreeing on a round's
	// outcome — a violated Agreement property.
	ErrDisagreement = errors.New("core: replica disagreement")
	// ErrExpelled reports that the round's leader was expelled for a
	// provably bad stake proposal.
	ErrExpelled = errors.New("core: leader expelled")
	// ErrRoundAborted reports a round that could not commit a block
	// because message loss left the live governors without a complete
	// election or any copy of the proposed block. The abort is
	// recoverable: no replica appended anything, so callers simply run
	// the next round — throughput degrades, safety holds.
	ErrRoundAborted = errors.New("core: round aborted under faults")
	// ErrNodeDown reports an operation on a crashed node, or a crash or
	// restart that does not apply (already down, already live, index out
	// of range).
	ErrNodeDown = errors.New("core: node down")
	// ErrBacklog reports a submission rejected because the provider's
	// ingress mempool shard is full — backpressure, not loss. Run a
	// round to drain the backlog and resubmit.
	ErrBacklog = errors.New("core: mempool backlog")
	// ErrClosed reports an operation on a closed engine.
	ErrClosed = errors.New("core: engine closed")
	// ErrUnknownProvider reports a submission for a provider index
	// outside the roster.
	ErrUnknownProvider = errors.New("core: unknown provider")
)

// Config assembles an alliance chain.
type Config struct {
	// Spec is the provider–collector topology. When Links is set,
	// only Spec.Providers and Spec.Collectors are used.
	Spec identity.TopologySpec
	// Links, when non-nil, overrides the regular topology with
	// explicit adjacency lists (provider index → collector indices) —
	// the paper's "the model can be easily extended to general
	// cases" (§3.1).
	Links [][]int
	// Governors is m, the number of governors.
	Governors int
	// Stakes are the initial stake units per governor; nil defaults
	// to one unit each.
	Stakes []uint64
	// Params tunes the reputation mechanism.
	Params reputation.Params
	// BlockLimit is b_limit; zero means unlimited.
	BlockLimit int
	// ArgueWindow is U, the argue latency bound in unchecked
	// transactions per provider.
	ArgueWindow int
	// MaxDelay is Δ in bus ticks.
	MaxDelay int
	// Seed drives all deterministic randomness (keys, screening).
	Seed int64
	// Validator is validate(tx), shared by collectors and governors.
	Validator tx.Validator
	// Behaviors assigns a behaviour per collector index; nil entries
	// (or a nil slice) mean honest.
	Behaviors []node.Behavior
	// ChainDir, when non-empty, backs every governor's ledger replica
	// with an append-only file `governor-<j>.chain` in that directory,
	// surviving restarts. Empty means in-memory replicas.
	ChainDir string
	// Workers bounds the goroutines used to fan out per-collector and
	// per-governor round work. Zero (or negative) means one worker per
	// logical CPU; 1 forces the fully sequential pipeline. Any value
	// produces byte-identical rounds — per-node RNG streams are
	// consumed only by their owning node, and buffered sends are
	// replayed onto the bus in node order — so Workers trades only
	// wall time, never determinism. When Workers != 1 the Validator
	// must be safe for concurrent use (pure functions are).
	Workers int
	// SilenceDecay makes every governor β-decay linked collectors that
	// stayed silent on a checked transaction, so silence costs
	// reputation on both disclosure paths instead of only at unchecked
	// reveals. See node.GovernorConfig.SilenceDecay.
	SilenceDecay bool
	// TraceCapacity, when positive, enables end-to-end transaction
	// tracing: every node emits lifecycle spans into a shared ring
	// buffer holding the most recent TraceCapacity spans. Tracing is
	// purely observational — it consumes no protocol randomness and
	// changes no ordering — so any run stays byte-identical with it on
	// or off. Zero disables tracing at zero hot-path cost.
	TraceCapacity int
	// EventCapacity, when positive, enables the structured consensus
	// event log: every node appends consensus-significant events
	// (upload screened, leader elected, block packed/committed,
	// reputation deltas with their arguments, quorum changes) into a
	// shared ring holding the most recent EventCapacity events. Like
	// tracing it is purely observational; zero disables it entirely.
	EventCapacity int
	// MempoolShards enables the sharded ingress mempool: submissions
	// are signed and staged in per-provider-shard bounded queues, and
	// each round's collecting phase drains them in (shard, seq) order —
	// capped at BlockLimit per round when a limit is set — before
	// broadcasting. Zero keeps the legacy path (one unbounded queue,
	// drained fully), which is byte-identical to broadcasting at
	// submission time. The same setting shards every governor's upload
	// mempool.
	MempoolShards int
	// MempoolShardCap bounds each ingress shard; a full shard rejects
	// submissions with ErrBacklog. Governor-side shards instead evict
	// their oldest pending transaction (counted, never silent). Zero
	// means unbounded.
	MempoolShardCap int
	// AdmissionFloor makes every governor shed verified uploads from
	// collectors whose draw-time reputation weight for the submitting
	// provider is below the floor. Zero admits everything.
	AdmissionFloor float64
	// SnapshotEvery, with ChainDir set, writes an atomic snapshot of
	// each governor's recovery state (round counter, reputation table,
	// stake vector) every N committed rounds and prunes chain segments
	// fully behind the snapshot horizon. Restart cost then scales with
	// N, not with chain height, and disk usage stays bounded. Zero
	// disables snapshots (full-suffix replay, no pruning).
	SnapshotEvery int
	// SegmentBytes overrides the chain segment roll threshold (bytes)
	// for file-backed stores. Zero keeps the ledger default (4 MiB).
	SegmentBytes int64
}

// Engine is a running alliance chain.
type Engine struct {
	cfg    Config
	im     *identity.Manager
	roster *identity.Roster
	bus    *network.Bus

	providers  []*node.Provider
	collectors []*node.Collector
	governors  []*node.Governor

	stake    *consensus.StakeLedger
	expelled []bool

	governorIDs []identity.NodeID
	providerIDs []identity.NodeID
	govPubs     []crypto.PublicKey

	pendingStakeTxs []consensus.StakeTx
	// stakeNonces are persistent per-governor counters so every signed
	// stake transfer a governor ever issues carries a fresh nonce —
	// nonces derived from the per-round pending queue length would
	// repeat every round and make signed transfers replayable.
	stakeNonces []uint64
	round       uint64

	// collectorDown and governorDown are the engine's failure-detector
	// view: a down node is excluded from round fan-outs and quorums
	// until restarted (see CrashCollector and friends in degrade.go).
	collectorDown []bool
	governorDown  []bool

	// workers is the resolved fan-out bound (Config.Workers, with 0
	// meaning GOMAXPROCS).
	workers int
	// reg collects engine-level operational metrics: protocol anomaly
	// counters and snapshots of the shared signature-cache statistics.
	reg *metrics.Registry
	// tracer is the shared lifecycle span ring buffer; nil when
	// Config.TraceCapacity is zero.
	tracer *trace.Recorder
	// events is the shared structured consensus event log; nil when
	// Config.EventCapacity is zero.
	events *events.Log
	// stageSeconds is the per-stage round latency histogram family
	// (label "stage"). Wall-clock observations only — never fed back
	// into protocol decisions, so determinism is untouched.
	stageSeconds *metrics.HistogramVec

	// stakeCorruptor is a test hook making the next stake proposal
	// lie; see CorruptNextStakeProposal.
	stakeCorruptor proposalCorruptor

	// ingress stages signed-but-unbroadcast submissions; each round's
	// collecting phase drains it in (shard, seq) order. closed gates
	// SubmitTx and RunRound after Close.
	ingress *mempool.Pool[ingressTx]
	closed  bool
	// Ingress mempool observability: queue depth, admissions, and the
	// per-round drain batch size.
	mpDepth      *metrics.Gauge
	mpAdmitted   *metrics.Counter
	mpDrainBatch *metrics.Histogram
}

// ingressTx is one staged submission: the signing provider and the
// signed transaction awaiting broadcast.
type ingressTx struct {
	provider int
	signed   tx.SignedTx
}

// mempoolEnabled reports whether the sharded ingress path was
// explicitly configured (versus the byte-identical legacy default).
func (e *Engine) mempoolEnabled() bool { return e.cfg.MempoolShards > 0 }

// drainBatchBuckets bound the mempool.drain_batch histogram:
// powers-of-two batch sizes from single transactions up past any
// realistic b_limit.
var drainBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// RoundResult summarizes one protocol round.
type RoundResult struct {
	// Serial is the new block's serial number.
	Serial uint64
	// Leader is the elected governor's index.
	Leader int
	// Block is the committed block.
	Block ledger.Block
	// Uploads counts collector uploads this round.
	Uploads int
	// Argues counts provider argues issued after block publication.
	Argues int
	// StakeBlock is non-nil when a stake-transform block committed.
	StakeBlock *consensus.StakeBlock
}

// New builds and wires an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Governors <= 0 {
		return nil, fmt.Errorf("governors %d: %w", cfg.Governors, ErrBadConfig)
	}
	if cfg.Validator == nil {
		return nil, fmt.Errorf("nil validator: %w", ErrBadConfig)
	}
	if cfg.MempoolShards < 0 {
		return nil, fmt.Errorf("mempool shards %d: %w", cfg.MempoolShards, ErrBadConfig)
	}
	if cfg.MempoolShardCap < 0 {
		return nil, fmt.Errorf("mempool shard cap %d: %w", cfg.MempoolShardCap, ErrBadConfig)
	}
	if cfg.AdmissionFloor < 0 || cfg.AdmissionFloor > 1 {
		return nil, fmt.Errorf("admission floor %v: %w", cfg.AdmissionFloor, ErrBadConfig)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	var topo *identity.Topology
	var err error
	if cfg.Links != nil {
		topo, err = identity.NewTopologyFromLinks(cfg.Spec.Providers, cfg.Spec.Collectors, cfg.Links)
	} else {
		topo, err = identity.NewRegularTopology(cfg.Spec)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Behaviors != nil && len(cfg.Behaviors) != topo.Collectors() {
		return nil, fmt.Errorf("%d behaviours for %d collectors: %w", len(cfg.Behaviors), topo.Collectors(), ErrBadConfig)
	}
	stakes := cfg.Stakes
	if stakes == nil {
		stakes = make([]uint64, cfg.Governors)
		for i := range stakes {
			stakes[i] = 1
		}
	}
	if len(stakes) != cfg.Governors {
		return nil, fmt.Errorf("%d stakes for %d governors: %w", len(stakes), cfg.Governors, ErrBadConfig)
	}

	seed := make([]byte, crypto.SeedSize)
	for i := 0; i < 8; i++ {
		seed[i] = byte(cfg.Seed >> (8 * i))
	}
	im, err := identity.NewManagerFromSeed(seed)
	if err != nil {
		return nil, err
	}
	roster, err := identity.RegisterAll(im, topo, cfg.Governors, seed)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:         cfg,
		im:          im,
		roster:      roster,
		bus:         network.NewBus(cfg.MaxDelay),
		stake:       consensus.NewStakeLedger(stakes),
		expelled:    make([]bool, cfg.Governors),
		stakeNonces: make([]uint64, cfg.Governors),
		workers:     resolveWorkers(cfg.Workers),
		reg:         metrics.NewRegistry(),
		tracer:      trace.NewRecorder(cfg.TraceCapacity),
		events:      events.NewLog(cfg.EventCapacity),
	}
	e.ingress = mempool.New[ingressTx](cfg.MempoolShards, cfg.MempoolShardCap)
	e.stageSeconds = e.reg.HistogramVec("round.stage_seconds", metrics.DefBuckets, "stage")
	e.mpDepth = e.reg.Gauge("mempool.depth")
	e.mpAdmitted = e.reg.Counter("mempool.admitted_total")
	e.mpDrainBatch = e.reg.Histogram("mempool.drain_batch", drainBatchBuckets)
	e.collectorDown = make([]bool, topo.Collectors())
	e.governorDown = make([]bool, cfg.Governors)
	for _, g := range roster.Governors {
		e.governorIDs = append(e.governorIDs, g.ID)
		e.govPubs = append(e.govPubs, g.Cert.PublicKey)
	}
	for _, p := range roster.Providers {
		e.providerIDs = append(e.providerIDs, p.ID)
	}

	// Providers.
	for k, mem := range roster.Providers {
		ep, err := e.bus.Register(mem.ID)
		if err != nil {
			return nil, err
		}
		collectorIDs := make([]identity.NodeID, 0, cfg.Spec.Degree)
		for _, c := range topo.CollectorsOf(k) {
			collectorIDs = append(collectorIDs, roster.Collectors[c].ID)
		}
		p := node.NewProvider(mem, ep, collectorIDs, e.governorIDs)
		p.SetTracer(e.tracer)
		e.providers = append(e.providers, p)
	}
	// Collectors.
	for c, mem := range roster.Collectors {
		ep, err := e.bus.Register(mem.ID)
		if err != nil {
			return nil, err
		}
		var behavior node.Behavior
		if cfg.Behaviors != nil {
			behavior = cfg.Behaviors[c]
		}
		col := node.NewCollector(
			mem, ep, im, cfg.Validator, behavior, e.governorIDs, cfg.Seed+int64(1000+c))
		col.SetTracer(e.tracer)
		e.collectors = append(e.collectors, col)
	}
	// Governors.
	for j, mem := range roster.Governors {
		ep, err := e.bus.Register(mem.ID)
		if err != nil {
			return nil, err
		}
		var store ledger.Store
		if cfg.ChainDir != "" {
			fs, err := ledger.OpenFileStoreOptions(
				filepath.Join(cfg.ChainDir, fmt.Sprintf("governor-%d.chain", j)),
				ledger.StoreOptions{SegmentBytes: cfg.SegmentBytes},
			)
			if err != nil {
				return nil, fmt.Errorf("governor %d chain file: %w", j, err)
			}
			store = fs
		}
		gov, err := node.NewGovernor(node.GovernorConfig{
			Member:          mem,
			Endpoint:        ep,
			IM:              im,
			Topology:        topo,
			Params:          cfg.Params,
			Validator:       cfg.Validator,
			BlockLimit:      cfg.BlockLimit,
			ArgueWindow:     cfg.ArgueWindow,
			Seed:            cfg.Seed + int64(2000+j),
			Store:           store,
			SilenceDecay:    cfg.SilenceDecay,
			MempoolShards:   cfg.MempoolShards,
			MempoolShardCap: cfg.MempoolShardCap,
			AdmissionFloor:  cfg.AdmissionFloor,
			Metrics:         e.reg,
			Tracer:          e.tracer,
			Events:          e.events,
		})
		if err != nil {
			return nil, err
		}
		e.governors = append(e.governors, gov)
	}
	// Resume the round counter from a persisted chain so leader
	// election inputs stay unique across restarts.
	e.round = e.governors[0].Store().Height()
	// Transactions submitted now will be processed by the next round.
	for _, p := range e.providers {
		p.SetRound(e.round + 1)
	}

	// Reload persisted reputation state so a restarted governor keeps
	// its learned weights instead of re-trusting every collector
	// equally. The sidecar .rep file (rewritten at every Close and
	// every snapshot) is preferred; when it is missing — e.g. a crash
	// wiped it or only the chain dir was copied — the governor falls
	// back to the GovernorState inside the chain's latest ledger
	// snapshot. A present-but-corrupt .rep stays a hard error: silently
	// re-trusting everyone would be a reputation reset.
	if cfg.ChainDir != "" {
		for j, g := range e.governors {
			path := e.reputationPath(j)
			data, err := os.ReadFile(path)
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("governor %d reputation state: %w", j, err)
			}
			if err == nil {
				if err := g.Table().RestoreSnapshot(data); err != nil {
					return nil, fmt.Errorf("governor %d reputation state: %w", j, err)
				}
				continue
			}
			fs, ok := g.Store().(*ledger.FileStore)
			if !ok {
				continue
			}
			snap, found := fs.LatestSnapshot()
			if !found || len(snap.App) == 0 {
				continue
			}
			st, err := node.DecodeGovernorState(snap.App)
			if err != nil {
				return nil, fmt.Errorf("governor %d ledger snapshot state: %w", j, err)
			}
			if err := g.Table().RestoreSnapshot(st.Reputation); err != nil {
				return nil, fmt.Errorf("governor %d ledger snapshot state: %w", j, err)
			}
		}
		// The stake vector travels in the same snapshots; the first
		// governor's is authoritative (replicas are byte-identical).
		// Configured initial stakes only seed a chain with no snapshot.
		if fs, ok := e.governors[0].Store().(*ledger.FileStore); ok {
			if snap, found := fs.LatestSnapshot(); found && len(snap.App) > 0 {
				st, err := node.DecodeGovernorState(snap.App)
				if err != nil {
					return nil, fmt.Errorf("governor 0 ledger snapshot state: %w", err)
				}
				if len(st.Stakes) > 0 {
					if err := e.stake.Apply(st.Stakes); err != nil {
						return nil, fmt.Errorf("restore stake state: %w", err)
					}
				}
			}
		}
	}
	return e, nil
}

// maybeSnapshotLocked writes the per-governor recovery snapshots and
// prunes segments behind them, at the SnapshotEvery cadence. Called at
// the end of a committed round. The .rep sidecar is rewritten at the
// same moment so both recovery sources stay equally fresh. Snapshot
// failures are returned (durability was promised and not delivered);
// prune failures only lose disk space, not data, so they are returned
// too but after all governors were attempted.
func (e *Engine) maybeSnapshot() error {
	if e.cfg.SnapshotEvery <= 0 || e.cfg.ChainDir == "" {
		return nil
	}
	if e.round%uint64(e.cfg.SnapshotEvery) != 0 {
		return nil
	}
	var firstErr error
	for j, g := range e.governors {
		fs, ok := g.Store().(*ledger.FileStore)
		if !ok {
			continue
		}
		app := node.GovernorState{
			Round:      e.round,
			Reputation: g.Table().Snapshot(),
			Stakes:     e.stake.Snapshot(),
		}.Encode()
		if _, err := fs.WriteSnapshot(app); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("governor %d snapshot: %w", j, err)
			}
			continue
		}
		e.reg.Counter("ledger.snapshots_total").Inc()
		if err := os.WriteFile(e.reputationPath(j), g.Table().Snapshot(), 0o644); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("governor %d reputation state: %w", j, err)
		}
		n, err := fs.Prune()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("governor %d prune: %w", j, err)
		}
		e.reg.Counter("ledger.segments_pruned_total").Add(int64(n))
	}
	return firstErr
}

func (e *Engine) reputationPath(j int) string {
	return filepath.Join(e.cfg.ChainDir, fmt.Sprintf("governor-%d.rep", j))
}

// Close persists reputation state (when ChainDir is set) and releases
// any file-backed governor stores. After Close, SubmitTx and RunRound
// fail with ErrClosed; Close itself is idempotent.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var firstErr error
	for j, g := range e.governors {
		if e.cfg.ChainDir != "" {
			if err := os.WriteFile(e.reputationPath(j), g.Table().Snapshot(), 0o644); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("governor %d reputation state: %w", j, err)
			}
		}
		if fs, ok := g.Store().(*ledger.FileStore); ok {
			if err := fs.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("governor %d: %w", j, err)
			}
		}
	}
	return firstErr
}

// Bus exposes the network for statistics and fault injection.
func (e *Engine) Bus() *network.Bus { return e.bus }

// Roster exposes the deployment membership.
func (e *Engine) Roster() *identity.Roster { return e.roster }

// IdentityManager exposes the IM.
func (e *Engine) IdentityManager() *identity.Manager { return e.im }

// Governor returns governor j.
func (e *Engine) Governor(j int) *node.Governor { return e.governors[j] }

// Provider returns provider k.
func (e *Engine) Provider(k int) *node.Provider { return e.providers[k] }

// Collector returns collector c.
func (e *Engine) Collector(c int) *node.Collector { return e.collectors[c] }

// Governors returns m.
func (e *Engine) Governors() int { return len(e.governors) }

// StakeLedger exposes the governors' stake state.
func (e *Engine) StakeLedger() *consensus.StakeLedger { return e.stake }

// Round returns the number of completed rounds.
func (e *Engine) Round() uint64 { return e.round }

// Workers returns the engine's resolved fan-out bound.
func (e *Engine) Workers() int { return e.workers }

// Tracer exposes the engine's lifecycle span recorder; nil when
// Config.TraceCapacity is zero.
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// Events exposes the engine's structured consensus event log; nil when
// Config.EventCapacity is zero.
func (e *Engine) Events() *events.Log { return e.events }

// observeStage records the wall-clock duration of one round stage into
// the "round.stage_seconds" histogram family and returns a fresh stage
// start. Purely observational — stage durations never feed back into
// protocol decisions.
func (e *Engine) observeStage(stage string, start time.Time) time.Time {
	//repchain:wallclock-ok metrics-only stage timing; the duration feeds a histogram no protocol decision reads back (§4c determinism argument)
	now := time.Now()
	e.stageSeconds.With(stage).Observe(now.Sub(start).Seconds())
	return now
}

// publishRoundMetrics updates the per-round operational gauges and
// counters after a committed round.
func (e *Engine) publishRoundMetrics(res *RoundResult) {
	e.reg.Counter("engine.rounds_total").Inc()
	e.reg.Counter("block.records_total").Add(int64(len(res.Block.Records)))
	height := uint64(0)
	for _, g := range e.governors {
		if h := g.Store().Height(); h > height {
			height = h
		}
	}
	e.reg.Gauge("chain.height").Set(float64(height))
	checked, unchecked := 0, 0
	for _, g := range e.governors {
		st := g.Stats()
		checked += st.Checked
		unchecked += st.Unchecked
	}
	if total := checked + unchecked; total > 0 {
		e.reg.Gauge("screen.check_fraction").Set(float64(checked) / float64(total))
	}
}

// Health summarizes the engine's liveness view for readiness probes:
// the failure detector's live-governor count against the majority
// quorum, and the tallest replica height.
type Health struct {
	Round     uint64 `json:"round"`
	Height    uint64 `json:"height"`
	Governors int    `json:"governors"`
	Live      int    `json:"live"`
	QuorumOK  bool   `json:"quorum_ok"`
}

// Health reports the engine's current degradation state.
func (e *Engine) Health() Health {
	h := Health{Round: e.round, Governors: len(e.governors)}
	for _, g := range e.governors {
		if height := g.Store().Height(); height > h.Height {
			h.Height = height
		}
	}
	h.Live = len(e.liveGovernors())
	h.QuorumOK = h.Live > len(e.governors)/2
	return h
}

// Metrics exposes the engine's operational metrics registry:
// "election.vrf_unknown_sender" counts dropped VRF messages from
// undecodable senders; "sigcache.hits", "sigcache.misses", and
// "sigcache.hit_rate" are per-round snapshots of the process-wide
// signature-verification cache.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// publishCryptoMetrics snapshots the shared verification-cache
// counters into the engine registry. The cache is process-wide, so
// under several live engines the gauges reflect combined activity.
func (e *Engine) publishCryptoMetrics() {
	hits, misses := crypto.DefaultVerifyCache.Stats()
	e.reg.Gauge("sigcache.hits").Set(float64(hits))
	e.reg.Gauge("sigcache.misses").Set(float64(misses))
	e.reg.Gauge("sigcache.hit_rate").Set(crypto.DefaultVerifyCache.HitRate())
	bs := crypto.DefaultVerifyCache.BatchStats()
	e.reg.Gauge("sigcache.batch_calls").Set(float64(bs.Calls))
	e.reg.Gauge("sigcache.batch_items").Set(float64(bs.Items))
	e.reg.Gauge("sigcache.batch_hits").Set(float64(bs.Hits))
	e.reg.Gauge("sigcache.batch_deduped").Set(float64(bs.Deduped))
	e.reg.Gauge("sigcache.batch_verified").Set(float64(bs.Verified))
	e.reg.Gauge("sigcache.batch_failed").Set(float64(bs.Failed))
	ps := codec.EncoderPoolStats()
	e.reg.Gauge("codec.pool_gets").Set(float64(ps.Gets))
	e.reg.Gauge("codec.pool_puts").Set(float64(ps.Puts))
	e.reg.Gauge("codec.pool_misses").Set(float64(ps.Misses))
	ms := crypto.MerkleBuildStats()
	e.reg.Gauge("merkle.incremental_leaves").Set(float64(ms.Leaves))
	e.reg.Gauge("merkle.incremental_roots").Set(float64(ms.Roots))
}

// SubmitTx has provider k sign a transaction and stage it in the
// ingress mempool; the next round's collecting phase broadcasts it.
// isValid is the provider's ground truth. When the provider's shard is
// full the submission is rejected with ErrBacklog before anything is
// signed or recorded, so a backpressured caller can simply run a round
// and resubmit — no provider state leaks.
func (e *Engine) SubmitTx(k int, kind string, payload []byte, isValid bool) (tx.SignedTx, error) {
	if e.closed {
		return tx.SignedTx{}, fmt.Errorf("submit: %w", ErrClosed)
	}
	if k < 0 || k >= len(e.providers) {
		return tx.SignedTx{}, fmt.Errorf("provider %d of %d: %w", k, len(e.providers), ErrUnknownProvider)
	}
	if !e.ingress.HasRoom(k) {
		return tx.SignedTx{}, fmt.Errorf("provider %d ingress shard full (cap %d): %w", k, e.ingress.Cap(), ErrBacklog)
	}
	signed := e.providers[k].Sign(kind, payload, isValid, int64(e.bus.Now()))
	if _, err := e.ingress.Add(k, ingressTx{provider: k, signed: signed}); err != nil {
		return tx.SignedTx{}, err // unreachable after HasRoom; defensive
	}
	e.mpAdmitted.Inc()
	e.mpDepth.Set(float64(e.ingress.Len()))
	return signed, nil
}

// MempoolDepth reports how many staged submissions await the next
// round's drain.
func (e *Engine) MempoolDepth() int { return e.ingress.Len() }

// drainIngress broadcasts a batch of staged submissions in (shard,
// seq) order — the same total order at any worker count, and with the
// legacy single-shard configuration exactly the submission order, so
// bus sequence numbers match the old broadcast-at-submit path byte for
// byte. With the sharded mempool enabled and a block limit set, the
// batch is capped at BlockLimit; the rest stays queued for later
// rounds.
func (e *Engine) drainIngress() error {
	max := 0
	if e.mempoolEnabled() {
		max = e.cfg.BlockLimit
	}
	batch := e.ingress.Drain(max)
	for _, it := range batch {
		if err := e.providers[it.provider].Broadcast(it.signed, e.bus); err != nil {
			return err
		}
	}
	e.mpDrainBatch.Observe(float64(len(batch)))
	e.mpDepth.Set(float64(e.ingress.Len()))
	return nil
}

// SubmitStakeTransfer queues a signed stake transfer from governor
// `from` for the next round's stake-transform block. The nonce comes
// from a monotone per-governor counter, never reused across rounds, so
// two transfers with identical (from, to, amount) still sign distinct
// bytes and a captured transfer cannot be replayed later.
func (e *Engine) SubmitStakeTransfer(from, to int, amount uint64) error {
	if from < 0 || from >= len(e.governors) || to < 0 || to >= len(e.governors) {
		return fmt.Errorf("transfer %d→%d: %w", from, to, ErrBadConfig)
	}
	nonce := e.stakeNonces[from]
	e.stakeNonces[from]++
	stx := consensus.SignStakeTx(from, to, amount, nonce, e.roster.Governors[from].PrivateKey)
	// "governors related to the transaction should broadcast the
	// signed transaction to all governors"
	if err := e.bus.Multicast(e.governorIDs[from], e.governorIDs, network.KindStakeTx, encodeStakeTx(stx)); err != nil {
		return err
	}
	e.pendingStakeTxs = append(e.pendingStakeTxs, stx)
	return nil
}

// pumpGovernors drains every live governor endpoint, routing collector
// uploads and provider argues into the governors, and returns the
// remaining messages per governor. Draining all endpoints before the
// caller processes anything guarantees that messages sent while
// processing (same tick) are seen by the next pump, not lost. Down
// governors are skipped — their inbox was purged at crash time and the
// bus drops anything new while they stay down.
//
// Governors are pumped in parallel: each drains only its own endpoint
// (delivery order is fixed by bus sequence numbers, not by schedule)
// and mutates only its own state, so per-governor results are
// independent of the worker count. This is the round's hottest loop —
// every governor verifies every upload's two signatures — and the
// shared verification cache turns the m-fold duplicate checks into
// hits.
func (e *Engine) pumpGovernors() ([][]network.Message, error) {
	rest := make([][]network.Message, len(e.governors))
	err := runIndexed(e.workers, len(e.governors), func(j int) error {
		if e.governorDown[j] {
			return nil
		}
		g := e.governors[j]
		r, err := g.HandleBatch(g.Endpoint().Receive())
		if err != nil {
			return err
		}
		rest[j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rest, nil
}

// RunRound executes the uploading and processing phases over whatever
// the collecting phase submitted, commits one block, and resolves
// provider argues triggered by the new block.
//
// Every fan-out below is deterministic at any Workers setting: nodes
// own their RNG streams and state, parallel stages buffer their
// outbound messages, and the engine replays the buffers onto the bus
// in node-index order — the exact order the sequential pipeline sends
// in. DESIGN.md §"Parallel round pipeline" carries the full argument.
//
// Under injected faults the round degrades instead of wedging: down
// nodes are excluded (see degrade.go), a governor that misses the
// block is resynced at the next round start, and a round that loses
// its election or every copy of the block fails with the recoverable
// ErrRoundAborted, leaving all replicas unchanged.
func (e *Engine) RunRound() (RoundResult, error) {
	return e.RunRoundCtx(context.Background())
}

// RunRoundCtx is RunRound with cancellation. The context is checked
// only at boundaries where abandoning the round leaves every replica
// consistent: before ingress drain, after resync but before the round
// counter advances, and after uploads land but before screening. Once
// screening starts the round runs to completion — aborting mid-screen
// would lose reputation updates that uploads already triggered.
// Cancellation surfaces as the context's error (use errors.Is against
// context.Canceled / DeadlineExceeded).
func (e *Engine) RunRoundCtx(ctx context.Context) (RoundResult, error) {
	if e.closed {
		return RoundResult{}, fmt.Errorf("run round: %w", ErrClosed)
	}
	res, err := e.runRoundCtx(ctx)
	if abortable(err) {
		e.reg.Counter("chaos.rounds_aborted").Inc()
	}
	return res, err
}

func (e *Engine) runRoundCtx(ctx context.Context) (RoundResult, error) {
	if err := ctx.Err(); err != nil {
		return RoundResult{}, err
	}
	// Broadcast staged submissions first, at the same bus tick the
	// pre-mempool engine broadcast them at submit time (the tick only
	// advances inside rounds), so legacy configurations stay
	// byte-identical on the wire.
	//repchain:wallclock-ok metrics-only stage timing; observeStage folds it into round.stage_seconds, never into protocol state
	stageStart := time.Now()
	if err := e.drainIngress(); err != nil {
		return RoundResult{}, err
	}
	stageStart = e.observeStage("ingest", stageStart)
	// Bring every live replica to a common head next: a governor that
	// rejoined after a crash or partition (or missed a block to drops)
	// catches up here, so this round's election and proposal build on
	// one prev-hash.
	if err := e.resyncGovernors(); err != nil {
		return RoundResult{}, err
	}
	stageStart = e.observeStage("resync", stageStart)
	if err := ctx.Err(); err != nil {
		// Safe abort: resync is idempotent and the round counter has
		// not advanced; drained submissions are already on the bus and
		// will be consumed by the next round.
		return RoundResult{}, err
	}
	e.round++
	// Round attribution for spans only: setters touch one plain field
	// per node, before any fan-out starts.
	for _, g := range e.governors {
		g.SetRound(e.round)
	}
	for _, c := range e.collectors {
		c.SetRound(e.round)
	}
	for _, p := range e.providers {
		p.SetRound(e.round + 1)
	}

	// --- Uploading phase ---
	e.bus.AdvancePastDelay() // provider broadcasts land
	missedRounds := e.reg.Counter("chaos.collector_missed_rounds")
	uploadsBy := make([]int, len(e.collectors))
	outBy := make([]*sendBuffer, len(e.collectors))
	err := runIndexed(e.workers, len(e.collectors), func(i int) error {
		if e.collectorDown[i] {
			missedRounds.Inc()
			outBy[i] = &sendBuffer{}
			return nil
		}
		buf := &sendBuffer{}
		n, err := e.collectors[i].ProcessRound(buf)
		uploadsBy[i], outBy[i] = n, buf
		return err
	})
	if err != nil {
		return RoundResult{}, err
	}
	uploads := 0
	for i, buf := range outBy {
		uploads += uploadsBy[i]
		if err := buf.flush(e.bus); err != nil {
			return RoundResult{}, err
		}
	}
	e.bus.AdvancePastDelay() // collector uploads land
	stageStart = e.observeStage("upload", stageStart)
	if err := ctx.Err(); err != nil {
		// Last safe abort point: uploads are on the bus but no governor
		// has consumed them, so the next round screens them intact.
		return RoundResult{}, err
	}

	// --- Processing phase: screening ---
	if _, err := e.pumpGovernors(); err != nil {
		return RoundResult{}, err
	}
	recordsByGov := make([][]ledger.Record, len(e.governors))
	err = runIndexed(e.workers, len(e.governors), func(j int) error {
		if e.governorDown[j] {
			return nil
		}
		g := e.governors[j]
		if err := g.ProcessArgues(); err != nil {
			return err
		}
		recs, err := g.ScreenRound()
		if err != nil {
			return err
		}
		recordsByGov[j] = recs
		return nil
	})
	if err != nil {
		return RoundResult{}, err
	}
	stageStart = e.observeStage("screen", stageStart)

	// --- Processing phase: leader election ---
	leader, err := e.electLeader()
	if err != nil {
		return RoundResult{}, err
	}
	stageStart = e.observeStage("elect", stageStart)
	if e.tracer != nil {
		e.tracer.Emit(trace.Span{
			Stage: trace.StageElect,
			Round: e.round,
			Attrs: []trace.Attr{{Key: "leader", Value: strconv.Itoa(leader)}},
		})
	}
	e.events.Emit(events.TypeLeaderElected, e.round, string(e.governorIDs[leader]),
		slog.Int("leader", leader))

	// --- Processing phase: block proposal ---
	block, err := e.governors[leader].BuildBlock(recordsByGov[leader])
	if err != nil {
		return RoundResult{}, err
	}
	leaderID := e.governorIDs[leader]
	// The leader broadcasts the block to all governors and providers
	// (providers need it to argue; every node can retrieve it).
	targets := append(append([]identity.NodeID(nil), e.governorIDs...), e.providerIDs...)
	if err := e.bus.Multicast(leaderID, targets, network.KindBlock, block.EncodeBytes()); err != nil {
		return RoundResult{}, err
	}
	e.bus.AdvancePastDelay()
	stageStart = e.observeStage("pack", stageStart)

	// Every live governor (leader included) verifies and appends.
	// Replicas are independent; the shared cache makes the m identical
	// proposer signature checks cost one. A governor whose copy of the
	// block was lost to drops is not an error: it is counted, left one
	// block behind, and resynced at the next round start. Only a round
	// where no replica at all holds the block aborts.
	rest, err := e.pumpGovernors()
	if err != nil {
		return RoundResult{}, err
	}
	missedBlock := e.reg.Counter("chaos.governor_missed_block")
	acceptedBy := make([]bool, len(e.governors))
	err = runIndexed(e.workers, len(e.governors), func(j int) error {
		if e.governorDown[j] {
			return nil
		}
		g := e.governors[j]
		for _, m := range rest[j] {
			if m.Kind != network.KindBlock {
				continue
			}
			b, err := ledger.DecodeBlockBytes(m.Payload)
			if err != nil {
				return fmt.Errorf("governor %d block decode: %w", j, err)
			}
			if err := g.AcceptBlock(b, leaderID, e.govPubs[leader]); err != nil {
				return err
			}
			acceptedBy[j] = true
		}
		if !acceptedBy[j] {
			missedBlock.Inc()
		}
		return nil
	})
	if err != nil {
		return RoundResult{}, err
	}
	anyAccepted := false
	for _, ok := range acceptedBy {
		anyAccepted = anyAccepted || ok
	}
	if !anyAccepted {
		return RoundResult{}, fmt.Errorf("block %d reached no replica: %w", block.Serial, ErrRoundAborted)
	}
	// Agreement check across the replicas that hold the block.
	if err := e.checkAgreement(block.Serial); err != nil {
		return RoundResult{}, err
	}
	stageStart = e.observeStage("commit", stageStart)

	// Providers observe the block and argue. Argues are buffered per
	// provider and replayed in provider order so governors receive them
	// in the same total order at any worker count.
	arguesBy := make([]int, len(e.providers))
	argueOut := make([]*sendBuffer, len(e.providers))
	err = runIndexed(e.workers, len(e.providers), func(k int) error {
		p := e.providers[k]
		buf := &sendBuffer{}
		argueOut[k] = buf
		for _, m := range p.Endpoint().Receive() {
			if m.Kind != network.KindBlock {
				continue
			}
			b, err := ledger.DecodeBlockBytes(m.Payload)
			if err != nil {
				return fmt.Errorf("provider %s block decode: %w", p.ID(), err)
			}
			n, err := p.ObserveBlock(b, buf)
			if err != nil {
				return err
			}
			arguesBy[k] += n
		}
		return nil
	})
	if err != nil {
		return RoundResult{}, err
	}
	argues := 0
	for k, buf := range argueOut {
		argues += arguesBy[k]
		if err := buf.flush(e.bus); err != nil {
			return RoundResult{}, err
		}
	}
	e.observeStage("argue", stageStart)

	result := RoundResult{
		Serial:  block.Serial,
		Leader:  leader,
		Block:   block,
		Uploads: uploads,
		Argues:  argues,
	}

	// --- Stake-transform block, when transfers are pending ---
	if len(e.pendingStakeTxs) > 0 {
		sb, err := e.runStakeTransform(leader)
		if err != nil {
			return result, err
		}
		result.StakeBlock = sb
		e.pendingStakeTxs = nil
	}
	e.publishCryptoMetrics()
	e.publishChaosMetrics()
	e.publishRoundMetrics(&result)
	if err := e.maybeSnapshot(); err != nil {
		return result, err
	}
	return result, nil
}

// electLeader runs the per-stake-unit VRF election of §3.4.3 over the
// live governors. Every live governor broadcasts tickets; every live
// governor independently verifies all tickets and computes the winner;
// the engine checks they agree. Down governors are treated as holding
// zero stake for the round — the paper's election already defines the
// zero-stake case (an empty batch), so the quorum's elections complete
// without them. A live governor whose VRF batch was lost to drops
// leaves every election incomplete; that is an ErrRoundAborted, not a
// disagreement.
func (e *Engine) electLeader() (int, error) {
	live := e.liveGovernors()
	if len(live) == 0 {
		return 0, fmt.Errorf("no live governor: %w", ErrRoundAborted)
	}
	// resyncGovernors brought all live replicas to one head, so the
	// first live governor's head is the common prev-hash.
	prevHash := crypto.ZeroHash
	if head, err := e.governors[live[0]].Store().Head(); err == nil {
		prevHash = head.Hash()
	}
	stakes := e.stake.Snapshot()
	for j := range stakes {
		if e.expelled[j] || e.governorDown[j] {
			stakes[j] = 0
		}
	}

	// Each live governor evaluates its tickets; evaluation fans out
	// across workers (the VRF costs one signature per stake unit) while
	// the broadcasts replay in governor order so KindVRF sequence
	// numbers match the sequential schedule.
	payloads := make([][]byte, len(e.governors))
	err := runIndexed(e.workers, len(e.governors), func(j int) error {
		if e.governorDown[j] {
			return nil
		}
		tickets := consensus.MakeTickets(e.roster.Governors[j].PrivateKey, prevHash, e.round, j, stakes[j])
		payloads[j] = consensus.EncodeTickets(tickets)
		return nil
	})
	if err != nil {
		return 0, err
	}
	for j := range e.governors {
		if e.governorDown[j] {
			continue
		}
		if err := e.bus.Multicast(e.governorIDs[j], e.governorIDs, network.KindVRF, payloads[j]); err != nil {
			return 0, err
		}
	}
	e.bus.AdvancePastDelay()

	// Each live governor verifies every ticket and elects
	// independently. The elections are disjoint, so they run one per
	// worker; remaining workers split each election's proof checks.
	// Messages from senders that do not decode as governors are dropped
	// — as the sequential code always did — but counted, so an operator
	// can see a misrouted or spoofed VRF stream instead of a silent
	// skip. Redelivered batches (duplication faults) and stale batches
	// from now-down governors are skipped the same way.
	rest, err := e.pumpGovernors()
	if err != nil {
		return 0, err
	}
	unknownSender := e.reg.Counter("election.vrf_unknown_sender")
	duplicateBatch := e.reg.Counter("election.vrf_duplicate_batch")
	wPer := (e.workers + len(live) - 1) / len(live)
	leaders := make([]int, len(e.governors))
	incomplete := make([]bool, len(e.governors))
	err = runIndexed(e.workers, len(e.governors), func(j int) error {
		if e.governorDown[j] {
			return nil
		}
		el, err := consensus.NewElection(e.round, prevHash, e.govPubs, stakes)
		if err != nil {
			return err
		}
		el.SetWorkers(wPer)
		submitted := make([]bool, len(e.governors))
		for _, m := range rest[j] {
			if m.Kind != network.KindVRF {
				continue
			}
			sender, err := decodeGovernorIndex(m.From)
			if err != nil {
				unknownSender.Inc()
				continue
			}
			if sender < 0 || sender >= len(e.governors) || e.governorDown[sender] {
				unknownSender.Inc()
				continue
			}
			if submitted[sender] {
				duplicateBatch.Inc()
				continue
			}
			tickets, err := consensus.DecodeTickets(m.Payload)
			if err != nil {
				return fmt.Errorf("governor %d tickets from %d: %w", j, sender, err)
			}
			if err := el.Submit(sender, tickets); err != nil {
				return err
			}
			submitted[sender] = true
		}
		// Down governors hold zero stake this round; submit their empty
		// batches locally so the election over the live set completes.
		for d := range e.governors {
			if e.governorDown[d] && !submitted[d] {
				if err := el.Submit(d, nil); err != nil {
					return err
				}
			}
		}
		l, _, err := el.Leader()
		if errors.Is(err, consensus.ErrIncompleteElection) {
			incomplete[j] = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("governor %d election: %w", j, err)
		}
		leaders[j] = l
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, j := range live {
		if incomplete[j] {
			return 0, fmt.Errorf("governor %d election incomplete (VRF batch lost): %w", j, ErrRoundAborted)
		}
	}
	for _, j := range live[1:] {
		if leaders[j] != leaders[live[0]] {
			return 0, fmt.Errorf("governor %d elected %d, governor %d elected %d: %w",
				j, leaders[j], live[0], leaders[live[0]], ErrDisagreement)
		}
	}
	return leaders[live[0]], nil
}

// checkAgreement asserts that every replica holding a block at serial
// s stored the identical block (the Agreement property). Replicas that
// have not reached s — down, or a block behind after a drop — are
// resynced later and checked then by AcceptBlock's fork detection.
func (e *Engine) checkAgreement(s uint64) error {
	ref := -1
	var refHash crypto.Hash
	for j := range e.governors {
		if e.governors[j].Store().Height() < s {
			continue
		}
		b, err := e.governors[j].Store().Get(s)
		if err != nil {
			return err
		}
		if ref < 0 {
			ref, refHash = j, b.Hash()
			continue
		}
		if b.Hash() != refHash {
			return fmt.Errorf("block %d differs between governors %d and %d: %w", s, ref, j, ErrDisagreement)
		}
	}
	if ref < 0 {
		return fmt.Errorf("block %d on no replica: %w", s, ErrRoundAborted)
	}
	return nil
}

func decodeGovernorIndex(id identity.NodeID) (int, error) {
	const prefix = "governor/"
	s := string(id)
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return 0, fmt.Errorf("%q is not a governor: %w", id, ErrBadConfig)
	}
	idx := 0
	for _, ch := range s[len(prefix):] {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("%q: %w", id, ErrBadConfig)
		}
		idx = idx*10 + int(ch-'0')
	}
	return idx, nil
}
