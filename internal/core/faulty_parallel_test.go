package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/network"
)

// faultHash is a tiny pure hash over a message's identity, so delay
// and drop decisions are functions of (message, recipient) only —
// deterministic at any worker count, exactly the discipline the bus
// hooks document.
func faultHash(m network.Message, to identity.NodeID, salt uint64) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < 8; i++ {
		mix(byte(m.Seq >> (8 * i)))
		mix(byte(salt >> (8 * i)))
	}
	for i := 0; i < len(to); i++ {
		mix(to[i])
	}
	return h
}

// faultyTrace runs rounds with a deterministic DelayFunc (spreads
// deliveries across [0, Δ]) and a deterministic DropFunc (loses ~5% of
// upload traffic) installed together, and records every per-round
// outcome.
func faultyTrace(t *testing.T, seed int64, workers, rounds int) roundTrace {
	t.Helper()
	cfg := defaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	e := newTestEngine(t, cfg)
	e.Bus().SetDelayFunc(func(m network.Message, to identity.NodeID) int {
		return int(faultHash(m, to, 0x1111) % 3) // 0..Δ with Δ=2
	})
	e.Bus().SetDropFunc(func(m network.Message, to identity.NodeID) bool {
		return m.Kind == network.KindCollectorTx && faultHash(m, to, 0x2222)%20 == 0
	})
	var tr roundTrace
	for r := 0; r < rounds; r++ {
		submitRound(t, e, 12, r, 3)
		res, err := e.RunRound()
		if err != nil {
			if errors.Is(err, ErrRoundAborted) {
				tr.hashes = append(tr.hashes, crypto.Hash{})
				tr.leaders = append(tr.leaders, -1)
				continue
			}
			t.Fatalf("seed %d workers %d round %d: %v", seed, workers, r, err)
		}
		tr.hashes = append(tr.hashes, res.Block.Hash())
		tr.leaders = append(tr.leaders, res.Leader)
	}
	tr.stakes = e.StakeLedger().Snapshot()
	for j := 0; j < e.Governors(); j++ {
		tr.snapshots = append(tr.snapshots, e.Governor(j).Table().Snapshot())
	}
	return tr
}

// TestParallelMatchesSequentialUnderFaults extends the determinism
// gate to the faulty path: with delay and drop hooks installed, the
// parallel pipeline must still be byte-identical to the sequential
// one — same commits, same leaders, same reputation state.
func TestParallelMatchesSequentialUnderFaults(t *testing.T) {
	const rounds = 6
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			want := faultyTrace(t, seed, 1, rounds)
			for _, workers := range []int{4} {
				got := faultyTrace(t, seed, workers, rounds)
				for r := range want.hashes {
					if got.hashes[r] != want.hashes[r] || got.leaders[r] != want.leaders[r] {
						t.Fatalf("workers=%d round %d diverges under faults", workers, r)
					}
				}
				for j := range want.snapshots {
					if !bytes.Equal(got.snapshots[j], want.snapshots[j]) {
						t.Fatalf("workers=%d governor %d reputation diverges under faults", workers, j)
					}
				}
			}
		})
	}
}

// TestDropFuncDegradesUploads: dropped uploads shrink the reports a
// governor sees but never wedge the round.
func TestDropFuncDegradesUploads(t *testing.T) {
	cfg := defaultConfig()
	e := newTestEngine(t, cfg)
	gov0 := identity.NodeID("governor/0")
	e.Bus().SetDropFunc(func(m network.Message, to identity.NodeID) bool {
		return m.Kind == network.KindCollectorTx && to == gov0
	})
	submitRound(t, e, 8, 0, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatalf("round with all uploads to one governor dropped: %v", err)
	}
	if res.Serial != 1 {
		t.Fatalf("serial = %d, want 1", res.Serial)
	}
	if st := e.Bus().Stats(); st.Dropped == 0 {
		t.Fatal("drop hook never fired")
	}
}

// TestDelayFuncStressesDrainOrder: maximal skew (every message held
// the full Δ) must not change any commit relative to the zero-delay
// run — AdvancePastDelay waits out the bound either way.
func TestDelayFuncStressesDrainOrder(t *testing.T) {
	run := func(delay int) crypto.Hash {
		cfg := defaultConfig()
		e := newTestEngine(t, cfg)
		e.Bus().SetDelayFunc(func(m network.Message, to identity.NodeID) int { return delay })
		submitRound(t, e, 10, 0, 2)
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("delay %d: %v", delay, err)
		}
		return res.Block.Hash()
	}
	if run(0) != run(2) {
		t.Fatal("block hash depends on uniform delivery delay")
	}
}
