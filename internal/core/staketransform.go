package core

import (
	"fmt"

	"repchain/internal/codec"
	"repchain/internal/consensus"
	"repchain/internal/crypto"
	"repchain/internal/network"
)

// runStakeTransform executes the 3-step stake-transform protocol of
// §3.4.3 for the round's pending transfers, with the given leader.
// When the leader provably misbehaves (stakeCorruptor hook), followers
// broadcast evidence, the engine verifies it, expels the leader, and
// the sub-protocol restarts under a re-elected leader.
func (e *Engine) runStakeTransform(leader int) (*consensus.StakeBlock, error) {
	const maxExpulsions = 3
	for attempt := 0; ; attempt++ {
		sb, expelledLeader, err := e.stakeTransformOnce(leader)
		if err != nil {
			return nil, err
		}
		if !expelledLeader {
			return sb, nil
		}
		if attempt+1 >= maxExpulsions {
			return nil, fmt.Errorf("stake transform failed after %d expulsions: %w", attempt+1, ErrExpelled)
		}
		// Re-elect among the remaining governors.
		leader, err = e.electLeader()
		if err != nil {
			return nil, err
		}
	}
}

// stakeTransformOnce runs one attempt. It returns expelled=true when
// the leader was caught and removed; the caller re-elects and retries.
func (e *Engine) stakeTransformOnce(leader int) (*consensus.StakeBlock, bool, error) {
	base := e.stake.Snapshot()
	leaderID := e.governorIDs[leader]
	leaderKey := e.roster.Governors[leader].PrivateKey

	// Step 1: leader proposes NEW_STATE.
	proposal, err := consensus.ProposeState(e.round, leader, base, e.pendingStakeTxs, leaderKey)
	if err != nil {
		return nil, false, err
	}
	if e.stakeCorruptor != nil {
		corrupt := e.stakeCorruptor
		e.stakeCorruptor = nil
		proposal = corrupt(proposal, leaderKey)
	}
	if err := e.bus.Multicast(leaderID, e.governorIDs, network.KindStakeState, encodeProposal(proposal)); err != nil {
		return nil, false, err
	}
	e.bus.AdvancePastDelay()

	// Step 2: followers verify and endorse, or accuse.
	var endorsements []consensus.Endorsement
	accused := false
	rest, err := e.pumpGovernors()
	if err != nil {
		return nil, false, err
	}
	for j := range e.governors {
		for _, m := range rest[j] {
			if m.Kind != network.KindStakeState {
				continue
			}
			p, err := decodeProposal(m.Payload)
			if err != nil {
				return nil, false, fmt.Errorf("governor %d proposal decode: %w", j, err)
			}
			if verr := consensus.VerifyProposal(p, e.govPubs[leader], e.govPubs, base); verr != nil {
				// Broadcast evidence to expel the leader.
				ev := consensus.AccuseLeader(j, p, verr, e.roster.Governors[j].PrivateKey)
				if err := e.bus.Multicast(e.governorIDs[j], e.governorIDs, network.KindEvidence, encodeEvidence(ev)); err != nil {
					return nil, false, err
				}
				accused = true
				continue
			}
			en := consensus.Endorse(p, j, e.roster.Governors[j].PrivateKey)
			if err := e.bus.Send(e.governorIDs[j], leaderID, network.KindStakeSig, encodeEndorsement(en)); err != nil {
				return nil, false, err
			}
		}
	}
	e.bus.AdvancePastDelay()

	// The leader (or any governor) drains evidence and endorsements.
	rest, err = e.pumpGovernors()
	if err != nil {
		return nil, false, err
	}
	for j := range e.governors {
		for _, m := range rest[j] {
			switch m.Kind {
			case network.KindStakeSig:
				if j != leader {
					continue
				}
				en, err := decodeEndorsement(m.Payload)
				if err != nil {
					return nil, false, fmt.Errorf("leader endorsement decode: %w", err)
				}
				endorsements = append(endorsements, en)
			case network.KindEvidence:
				ev, err := decodeEvidence(m.Payload)
				if err != nil {
					return nil, false, fmt.Errorf("governor %d evidence decode: %w", j, err)
				}
				if verr := consensus.VerifyEvidence(ev, e.govPubs[ev.Accuser], e.govPubs[leader], e.govPubs, base); verr == nil {
					accused = true
				}
			}
		}
	}
	if accused {
		e.expelled[leader] = true
		return nil, true, nil
	}

	// Step 3: leader assembles the stake block with every signature.
	sb, err := consensus.AssembleStakeBlock(proposal, endorsements, e.govPubs)
	if err != nil {
		return nil, false, err
	}
	if err := e.bus.Multicast(leaderID, e.governorIDs, network.KindStakeBlock, encodeStakeBlock(sb)); err != nil {
		return nil, false, err
	}
	e.bus.AdvancePastDelay()
	rest, err = e.pumpGovernors()
	if err != nil {
		return nil, false, err
	}
	for j := range e.governors {
		for _, m := range rest[j] {
			if m.Kind != network.KindStakeBlock {
				continue
			}
			got, err := decodeStakeBlock(m.Payload)
			if err != nil {
				return nil, false, fmt.Errorf("governor %d stake block decode: %w", j, err)
			}
			if err := consensus.VerifyStakeBlock(got, e.govPubs); err != nil {
				return nil, false, err
			}
		}
	}
	if err := e.stake.Apply(sb.NewState); err != nil {
		return nil, false, err
	}
	return &sb, false, nil
}

// proposalCorruptor lets a test make the would-be leader mutate and
// re-sign its proposal — modelling a Byzantine leader for the
// expulsion path.
type proposalCorruptor func(consensus.StateProposal, crypto.PrivateKey) consensus.StateProposal

// CorruptNextStakeProposal installs a hook that makes the next stake
// proposal lie about NEW_STATE, exercising leader expulsion. Testing
// hook; not part of the protocol.
func (e *Engine) CorruptNextStakeProposal() {
	e.stakeCorruptor = func(p consensus.StateProposal, key crypto.PrivateKey) consensus.StateProposal {
		if len(p.NewState) > 0 {
			p.NewState[0] += 1000 // mint stake out of thin air
		}
		return consensus.ResignProposal(p, key)
	}
}

// --- wire encodings for the governor-to-governor messages ---

func encodeStakeTx(t consensus.StakeTx) []byte {
	enc := codec.NewEncoder(64)
	t.Encode(enc)
	out := make([]byte, enc.Len())
	copy(out, enc.Bytes())
	return out
}

func encodeProposal(p consensus.StateProposal) []byte {
	e := codec.NewEncoder(128)
	e.PutUint64(p.Round)
	e.PutInt(p.Leader)
	e.PutInt(len(p.NewState))
	for _, s := range p.NewState {
		e.PutUint64(s)
	}
	e.PutInt(len(p.Txs))
	for _, t := range p.Txs {
		t.Encode(e)
	}
	e.PutBytes(p.Sig)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeProposal(b []byte) (consensus.StateProposal, error) {
	d := codec.NewDecoder(b)
	var p consensus.StateProposal
	var err error
	if p.Round, err = d.Uint64(); err != nil {
		return p, err
	}
	if p.Leader, err = d.Int(); err != nil {
		return p, err
	}
	n, err := d.Int()
	if err != nil || n < 0 || n > 1<<20 {
		return p, fmt.Errorf("proposal state length %d: %w", n, ErrBadConfig)
	}
	p.NewState = make([]uint64, n)
	for i := range p.NewState {
		if p.NewState[i], err = d.Uint64(); err != nil {
			return p, err
		}
	}
	nt, err := d.Int()
	if err != nil || nt < 0 || nt > 1<<20 {
		return p, fmt.Errorf("proposal tx count %d: %w", nt, ErrBadConfig)
	}
	p.Txs = make([]consensus.StakeTx, 0, nt)
	for i := 0; i < nt; i++ {
		t, err := consensus.DecodeStakeTx(d)
		if err != nil {
			return p, err
		}
		p.Txs = append(p.Txs, t)
	}
	if p.Sig, err = d.Bytes(); err != nil {
		return p, err
	}
	return p, nil
}

func encodeEndorsement(en consensus.Endorsement) []byte {
	e := codec.NewEncoder(128)
	e.PutUint64(en.Round)
	e.PutInt(en.Governor)
	e.PutRaw(en.StateHash[:])
	e.PutBytes(en.Sig)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeEndorsement(b []byte) (consensus.Endorsement, error) {
	d := codec.NewDecoder(b)
	var en consensus.Endorsement
	var err error
	if en.Round, err = d.Uint64(); err != nil {
		return en, err
	}
	if en.Governor, err = d.Int(); err != nil {
		return en, err
	}
	raw, err := d.Raw(32)
	if err != nil {
		return en, err
	}
	copy(en.StateHash[:], raw)
	if en.Sig, err = d.Bytes(); err != nil {
		return en, err
	}
	return en, nil
}

func encodeStakeBlock(sb consensus.StakeBlock) []byte {
	e := codec.NewEncoder(256)
	e.PutUint64(sb.Round)
	e.PutInt(sb.Leader)
	e.PutInt(len(sb.NewState))
	for _, s := range sb.NewState {
		e.PutUint64(s)
	}
	e.PutInt(len(sb.Endorsements))
	for _, en := range sb.Endorsements {
		e.PutUint64(en.Round)
		e.PutInt(en.Governor)
		e.PutRaw(en.StateHash[:])
		e.PutBytes(en.Sig)
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeStakeBlock(b []byte) (consensus.StakeBlock, error) {
	d := codec.NewDecoder(b)
	var sb consensus.StakeBlock
	var err error
	if sb.Round, err = d.Uint64(); err != nil {
		return sb, err
	}
	if sb.Leader, err = d.Int(); err != nil {
		return sb, err
	}
	n, err := d.Int()
	if err != nil || n < 0 || n > 1<<20 {
		return sb, fmt.Errorf("stake block state length %d: %w", n, ErrBadConfig)
	}
	sb.NewState = make([]uint64, n)
	for i := range sb.NewState {
		if sb.NewState[i], err = d.Uint64(); err != nil {
			return sb, err
		}
	}
	ne, err := d.Int()
	if err != nil || ne < 0 || ne > 1<<20 {
		return sb, fmt.Errorf("stake block endorsement count %d: %w", ne, ErrBadConfig)
	}
	for i := 0; i < ne; i++ {
		var en consensus.Endorsement
		if en.Round, err = d.Uint64(); err != nil {
			return sb, err
		}
		if en.Governor, err = d.Int(); err != nil {
			return sb, err
		}
		raw, err := d.Raw(32)
		if err != nil {
			return sb, err
		}
		copy(en.StateHash[:], raw)
		if en.Sig, err = d.Bytes(); err != nil {
			return sb, err
		}
		sb.Endorsements = append(sb.Endorsements, en)
	}
	return sb, nil
}

func encodeEvidence(ev consensus.Evidence) []byte {
	e := codec.NewEncoder(256)
	e.PutInt(ev.Accuser)
	e.PutBytes(encodeProposal(ev.Proposal))
	e.PutString(ev.Reason)
	e.PutBytes(ev.Sig)
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

func decodeEvidence(b []byte) (consensus.Evidence, error) {
	d := codec.NewDecoder(b)
	var ev consensus.Evidence
	var err error
	if ev.Accuser, err = d.Int(); err != nil {
		return ev, err
	}
	praw, err := d.Bytes()
	if err != nil {
		return ev, err
	}
	if ev.Proposal, err = decodeProposal(praw); err != nil {
		return ev, err
	}
	if ev.Reason, err = d.String(); err != nil {
		return ev, err
	}
	if ev.Sig, err = d.Bytes(); err != nil {
		return ev, err
	}
	return ev, nil
}
