package core

import (
	"testing"

	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/network"
	"repchain/internal/node"
	"repchain/internal/tx"
)

// signLabelForTest produces a labeled-envelope encoding with the given
// validity label, signed by the collector — used to inject
// equivocation.
func signLabelForTest(signed tx.SignedTx, valid bool, coll identity.Member) ([]byte, error) {
	label := tx.LabelInvalid
	if valid {
		label = tx.LabelValid
	}
	lt, err := tx.SignLabel(signed, label, coll.ID, coll.PrivateKey)
	if err != nil {
		return nil, err
	}
	return lt.EncodeBytes(), nil
}

// TestIrregularTopology runs the engine over an explicit non-regular
// provider–collector graph (§3.1: "the model can be easily extended to
// general cases"): provider degrees 3, 1, 2, 1 over 3 collectors.
func TestIrregularTopology(t *testing.T) {
	cfg := defaultConfig()
	cfg.Spec = identity.TopologySpec{Providers: 4, Collectors: 3}
	cfg.Links = [][]int{
		{0, 1, 2}, // provider 0 fans out to everyone
		{1},       // provider 1 has a single collector
		{0, 2},
		{2},
	}
	e := newTestEngine(t, cfg)
	for r := 0; r < 5; r++ {
		submitRound(t, e, 8, r, 4)
		if _, err := e.RunRound(); err != nil {
			t.Fatalf("RunRound(%d) error = %v", r, err)
		}
	}
	if err := ledger.VerifyChain(e.Governor(0).Store()); err != nil {
		t.Fatal(err)
	}
	// The single-collector provider's transactions still commit.
	if e.Provider(1).SettledValid() == 0 {
		t.Fatal("single-collector provider never settled a transaction")
	}
	// Reputation vectors have per-provider lengths matching degrees:
	// collector 2 oversees providers 0, 2, 3 → vector length 3+2.
	vec, err := e.Governor(0).Table().Vector(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 5 {
		t.Fatalf("collector 2 vector length = %d, want 5", len(vec))
	}
}

// TestLossyUploadsToOneGovernor drops 30% of collector uploads to one
// non-leader governor. The paper's synchrony assumption is violated
// for that replica's inputs, yet Agreement must hold: the chain
// records the leader's screening, and every replica still adopts
// identical blocks.
func TestLossyUploadsToOneGovernor(t *testing.T) {
	cfg := defaultConfig()
	e := newTestEngine(t, cfg)
	drop := 0
	victim := e.Roster().Governors[2].ID
	e.Bus().SetDropFunc(func(m network.Message, to identity.NodeID) bool {
		if m.Kind == network.KindCollectorTx && to == victim {
			drop++
			return drop%3 == 0
		}
		return false
	})
	for r := 0; r < 6; r++ {
		submitRound(t, e, 10, r, 4)
		if _, err := e.RunRound(); err != nil {
			t.Fatalf("RunRound(%d) error = %v", r, err)
		}
	}
	// Agreement across replicas despite the victim's partial view.
	ref := e.Governor(0).Store()
	for j := 1; j < e.Governors(); j++ {
		if e.Governor(j).Store().Height() != ref.Height() {
			t.Fatalf("governor %d fell behind", j)
		}
		for s := uint64(1); s <= ref.Height(); s++ {
			a, err := ref.Get(s)
			if err != nil {
				t.Fatal(err)
			}
			b, err := e.Governor(j).Store().Get(s)
			if err != nil {
				t.Fatal(err)
			}
			if a.Hash() != b.Hash() {
				t.Fatalf("Agreement violated at serial %d under lossy uploads", s)
			}
		}
	}
	if drop == 0 {
		t.Fatal("drop hook never fired; test is vacuous")
	}
}

// TestDelayedNetworkWithinBound runs with per-message delays up to the
// synchrony bound Δ; the round structure must absorb them.
func TestDelayedNetworkWithinBound(t *testing.T) {
	cfg := defaultConfig()
	cfg.MaxDelay = 3
	e := newTestEngine(t, cfg)
	tick := 0
	e.Bus().SetDelayFunc(func(m network.Message, to identity.NodeID) int {
		tick++
		return tick % (cfg.MaxDelay + 1) // delays 0..Δ
	})
	for r := 0; r < 5; r++ {
		submitRound(t, e, 8, r, 4)
		res, err := e.RunRound()
		if err != nil {
			t.Fatalf("RunRound(%d) error = %v", r, err)
		}
		if res.Serial != uint64(r+1) {
			t.Fatalf("serial %d at round %d", res.Serial, r)
		}
	}
	for j := 0; j < e.Governors(); j++ {
		if err := ledger.VerifyChain(e.Governor(j).Store()); err != nil {
			t.Fatalf("governor %d: %v", j, err)
		}
	}
	// All uploads eventually landed: governor 0 saw every report.
	if e.Governor(0).Stats().ReportsReceived == 0 {
		t.Fatal("no reports arrived under delay")
	}
}

// TestNoDuplicateValidRecords scans the full chain after heavy argue
// traffic: no transaction may be recorded valid more than once, even
// though several governors hold the same argue re-validation pending.
func TestNoDuplicateValidRecords(t *testing.T) {
	cfg := defaultConfig()
	cfg.Params.F = 0.9
	cfg.Behaviors = []node.Behavior{
		node.ProbBehavior{Misreport: 1},
		node.ProbBehavior{Misreport: 1},
		node.ProbBehavior{Misreport: 1},
		nil,
	}
	e := newTestEngine(t, cfg)
	for r := 0; r < 6; r++ {
		submitRound(t, e, 12, r, 0)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < 8; r++ {
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Governor(0).Stats().ArguesAccepted == 0 {
		t.Fatal("no argues accepted; duplicate-inclusion path not exercised")
	}
	store := e.Governor(0).Store()
	seenValid := make(map[string]uint64)
	for s := uint64(1); s <= store.Height(); s++ {
		b, err := store.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range b.Records {
			if rec.Status != tx.StatusValid {
				continue
			}
			id := rec.Signed.ID().String()
			if prev, dup := seenValid[id]; dup {
				t.Fatalf("transaction %s recorded valid in blocks %d and %d", id[:8], prev, s)
			}
			seenValid[id] = s
		}
	}
	if len(seenValid) == 0 {
		t.Fatal("no valid records at all")
	}
}

// TestRevokedCollectorRejected revokes a collector's credential
// mid-run: its subsequent uploads must be rejected (and penalized as
// unattributable-forge attempts), while the rest of the alliance keeps
// committing blocks.
func TestRevokedCollectorRejected(t *testing.T) {
	cfg := defaultConfig()
	e := newTestEngine(t, cfg)
	for r := 0; r < 2; r++ {
		submitRound(t, e, 8, r, 0)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Governor(0).Stats().ForgeriesDetected
	if err := e.IdentityManager().Revoke(e.Roster().Collectors[0].ID); err != nil {
		t.Fatal(err)
	}
	for r := 2; r < 4; r++ {
		submitRound(t, e, 8, r, 0)
		if _, err := e.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	// The revoked collector kept uploading; every upload was rejected.
	after := e.Governor(0).Stats().ForgeriesDetected
	if after <= before {
		t.Fatal("revoked collector's uploads were not rejected")
	}
	// Chain still advances and verifies.
	if e.Governor(0).Store().Height() != 4 {
		t.Fatalf("height = %d", e.Governor(0).Store().Height())
	}
	if err := ledger.VerifyChain(e.Governor(0).Store()); err != nil {
		t.Fatal(err)
	}
	// No transaction may carry only the revoked collector's voice: all
	// committed valid transactions survived through the remaining
	// collectors.
	for k := 0; k < e.Roster().Topology.Providers(); k++ {
		if pending := e.Provider(k).PendingValid(); pending > 0 {
			// Providers linked solely to the revoked collector can
			// legitimately stall; the default topology links each
			// provider to 2 collectors, so nothing should stall here.
			t.Fatalf("provider %d stalled after revocation", k)
		}
	}
}

// TestInsufficientStakeTransferSurfaces: a transfer exceeding the
// payer's balance must fail the round loudly, not corrupt state.
func TestInsufficientStakeTransferSurfaces(t *testing.T) {
	cfg := defaultConfig()
	cfg.Stakes = []uint64{1, 1, 1}
	e := newTestEngine(t, cfg)
	if err := e.SubmitStakeTransfer(0, 1, 50); err != nil {
		t.Fatalf("submit-time error = %v (validation happens at proposal)", err)
	}
	if _, err := e.RunRound(); err == nil {
		t.Fatal("overdraft stake transfer committed")
	}
	// Stake state untouched.
	for j, s := range e.StakeLedger().Snapshot() {
		if s != 1 {
			t.Fatalf("governor %d stake = %d after failed transfer", j, s)
		}
	}
}

// TestEquivocatingCollectorPenalizedOnChain drives a collector that
// double-signs conflicting labels through the full protocol and
// checks the forge penalty lands.
func TestEquivocatingCollectorPenalizedOnChain(t *testing.T) {
	cfg := defaultConfig()
	e := newTestEngine(t, cfg)
	// Submit one transaction and capture the provider envelope by
	// re-signing an equivocating label pair from collector 0.
	signed, err := e.SubmitTx(0, "equiv", []byte{1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	collMem := e.Roster().Collectors[0]
	govIDs := make([]identity.NodeID, e.Governors())
	for j := range govIDs {
		govIDs[j] = e.Roster().Governors[j].ID
	}
	// The collector is linked with provider 0? Ensure linkage first.
	if !e.IdentityManager().Linked(e.Roster().Providers[0].ID, collMem.ID) {
		t.Skip("collector 0 not linked with provider 0 in this topology")
	}
	lt1, err := signLabelForTest(signed, true, collMem)
	if err != nil {
		t.Fatal(err)
	}
	lt2, err := signLabelForTest(signed, false, collMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Bus().Multicast(collMem.ID, govIDs, network.KindCollectorTx, lt1); err != nil {
		t.Fatal(err)
	}
	if err := e.Bus().Multicast(collMem.ID, govIDs, network.KindCollectorTx, lt2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
	if got := e.Governor(0).Table().Forge(0); got >= 0 {
		t.Fatalf("equivocator's forge score = %v, want negative", got)
	}
}
