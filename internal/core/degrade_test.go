package core

import (
	"errors"
	"testing"

	"repchain/internal/identity"
	"repchain/internal/network"
)

func TestCrashedCollectorRoundProceeds(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	submitRound(t, e, 8, 0, 0)
	base, err := e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CrashCollector(1); err != nil {
		t.Fatal(err)
	}
	if !e.CollectorDown(1) {
		t.Fatal("CollectorDown(1) = false after crash")
	}
	submitRound(t, e, 8, 1, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatalf("round with crashed collector: %v", err)
	}
	if res.Uploads >= base.Uploads {
		t.Fatalf("uploads %d with a crashed collector, %d with all live: no degradation visible",
			res.Uploads, base.Uploads)
	}
	if err := e.RestartCollector(1); err != nil {
		t.Fatal(err)
	}
	submitRound(t, e, 8, 2, 0)
	res, err = e.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if res.Uploads != base.Uploads {
		t.Fatalf("uploads %d after restart, want %d", res.Uploads, base.Uploads)
	}
	if got := e.Metrics().Counter("chaos.collector_crashes").Value(); got != 1 {
		t.Fatalf("chaos.collector_crashes = %d, want 1", got)
	}
	if got := e.Metrics().Counter("chaos.collector_missed_rounds").Value(); got != 1 {
		t.Fatalf("chaos.collector_missed_rounds = %d, want 1", got)
	}
}

func TestCrashedGovernorQuorumProceedsAndResyncs(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	if err := e.CrashGovernor(2); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		submitRound(t, e, 6, r, 0)
		if _, err := e.RunRound(); err != nil {
			t.Fatalf("round %d with crashed governor: %v", r, err)
		}
	}
	if h := e.Governor(2).Store().Height(); h != 0 {
		t.Fatalf("crashed governor height = %d, want 0", h)
	}
	if err := e.RestartGovernor(2); err != nil {
		t.Fatal(err)
	}
	submitRound(t, e, 6, 2, 0)
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
	want := e.Governor(0).Store().Height()
	if h := e.Governor(2).Store().Height(); h != want {
		t.Fatalf("restarted governor height = %d, want %d (resynced)", h, want)
	}
	if got := e.Metrics().Counter("chaos.governor_resyncs").Value(); got < 1 {
		t.Fatal("chaos.governor_resyncs not counted")
	}
	if got := e.Metrics().Counter("chaos.blocks_synced").Value(); got != 2 {
		t.Fatalf("chaos.blocks_synced = %d, want 2", got)
	}
}

func TestCrashRestartGuards(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	if err := e.CrashCollector(-1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("CrashCollector(-1) = %v, want ErrNodeDown", err)
	}
	if err := e.RestartCollector(0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("restart of live collector = %v, want ErrNodeDown", err)
	}
	if err := e.CrashCollector(0); err != nil {
		t.Fatal(err)
	}
	if err := e.CrashCollector(0); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("double crash = %v, want ErrNodeDown", err)
	}
	// Crashing every governor is refused at the last one.
	if err := e.CrashGovernor(0); err != nil {
		t.Fatal(err)
	}
	if err := e.CrashGovernor(1); err != nil {
		t.Fatal(err)
	}
	if err := e.CrashGovernor(2); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("crash of last governor = %v, want ErrBadConfig", err)
	}
}

func TestGovernorMissedBlockResyncsNextRound(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	gov2 := identity.NodeID("governor/2")
	e.Bus().SetDropFunc(func(m network.Message, to identity.NodeID) bool {
		return m.Kind == network.KindBlock && to == gov2
	})
	submitRound(t, e, 6, 0, 0)
	if _, err := e.RunRound(); err != nil {
		t.Fatalf("round with one replica missing the block: %v", err)
	}
	if h := e.Governor(2).Store().Height(); h != 0 {
		t.Fatalf("governor 2 height = %d, want 0 (block dropped)", h)
	}
	if got := e.Metrics().Counter("chaos.governor_missed_block").Value(); got != 1 {
		t.Fatalf("chaos.governor_missed_block = %d, want 1", got)
	}
	e.Bus().SetDropFunc(nil)
	submitRound(t, e, 6, 1, 0)
	if _, err := e.RunRound(); err != nil {
		t.Fatal(err)
	}
	if h, want := e.Governor(2).Store().Height(), e.Governor(0).Store().Height(); h != want {
		t.Fatalf("governor 2 height = %d, want %d after resync", h, want)
	}
}

func TestVRFBatchLossAbortsRecoverably(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	e.Bus().SetDropFunc(func(m network.Message, to identity.NodeID) bool {
		return m.Kind == network.KindVRF && m.From == "governor/1"
	})
	submitRound(t, e, 6, 0, 0)
	if _, err := e.RunRound(); !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("round with lost VRF batch = %v, want ErrRoundAborted", err)
	}
	if got := e.Metrics().Counter("chaos.rounds_aborted").Value(); got != 1 {
		t.Fatalf("chaos.rounds_aborted = %d, want 1", got)
	}
	for j := 0; j < e.Governors(); j++ {
		if h := e.Governor(j).Store().Height(); h != 0 {
			t.Fatalf("governor %d height = %d after abort, want 0", j, h)
		}
	}
	// Faults clear; the next round commits.
	e.Bus().SetDropFunc(nil)
	submitRound(t, e, 6, 1, 0)
	res, err := e.RunRound()
	if err != nil {
		t.Fatalf("round after faults cleared: %v", err)
	}
	if res.Serial != 1 {
		t.Fatalf("serial = %d, want 1", res.Serial)
	}
}

func TestDuplicateBlockDeliveryIdempotent(t *testing.T) {
	e := newTestEngine(t, defaultConfig())
	e.Bus().SetDupFunc(func(m network.Message, to identity.NodeID) int {
		if m.Kind == network.KindBlock || m.Kind == network.KindVRF {
			return 1
		}
		return 0
	})
	for r := 0; r < 3; r++ {
		submitRound(t, e, 6, r, 2)
		if _, err := e.RunRound(); err != nil {
			t.Fatalf("round %d with duplicated block/VRF traffic: %v", r, err)
		}
	}
	if got := e.Metrics().Counter("election.vrf_duplicate_batch").Value(); got == 0 {
		t.Fatal("duplicated VRF batches not counted")
	}
}
