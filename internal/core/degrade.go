// Graceful degradation under faults: crash–restart of individual
// collectors and governors, and replica resynchronisation after a
// governor rejoins. The engine plays the role of a perfect failure
// detector — Crash* marks a node down, Restart* marks it live again —
// and RunRound excludes down nodes from every fan-out and quorum, so a
// missing node costs throughput (fewer reports, a smaller election)
// instead of wedging the round.
//
// Two fault classes behave differently:
//
//   - detected faults (crash, partition): the node is excluded, the
//     live quorum proceeds, and the node resyncs from the tallest live
//     replica at the next round start;
//   - undetected faults (random drop, duplicate, reorder on the bus):
//     a round that loses a VRF batch or every copy of the proposed
//     block aborts with ErrRoundAborted — no replica appends anything —
//     and the next round retries.
//
// All transitions and exclusions are plain deterministic state, so a
// fault plan replayed against any worker count produces byte-identical
// chains and reputation tables (the chaos suite asserts this).
package core

import (
	"errors"
	"fmt"
	"log/slog"

	"repchain/internal/events"
)

// emitQuorum records a node.crash/node.restart transition plus the
// resulting governor quorum in the structured event stream. Collector
// transitions change no quorum, so they emit only the node event.
func (e *Engine) emitNodeEvent(typ, node, cause string, quorum bool) {
	if e.events == nil {
		return
	}
	e.events.Emit(typ, e.round, node, slog.String("cause", cause))
	if quorum {
		e.events.Emit(events.TypeQuorumChange, e.round, node,
			slog.Int("live", len(e.liveGovernors())),
			slog.Int("total", len(e.governors)),
			slog.String("cause", cause))
	}
}

// CrashCollector marks collector c crashed: the bus drops its traffic
// in both directions and its queued inbox is discarded, as a real
// process crash would.
func (e *Engine) CrashCollector(c int) error {
	if c < 0 || c >= len(e.collectors) || e.collectorDown[c] {
		return fmt.Errorf("crash collector %d: %w", c, ErrNodeDown)
	}
	e.collectorDown[c] = true
	e.bus.SetDown(e.roster.Collectors[c].ID, true)
	e.collectors[c].Endpoint().Purge()
	e.reg.Counter("chaos.collector_crashes").Inc()
	e.emitNodeEvent(events.TypeNodeCrash, string(e.roster.Collectors[c].ID), "crash", false)
	return nil
}

// RestartCollector brings a crashed collector back. Its inbox is
// purged again — messages sent while it was down never survive a
// restart — and it participates from the next round on.
func (e *Engine) RestartCollector(c int) error {
	if c < 0 || c >= len(e.collectors) || !e.collectorDown[c] {
		return fmt.Errorf("restart collector %d: %w", c, ErrNodeDown)
	}
	e.collectorDown[c] = false
	e.bus.SetDown(e.roster.Collectors[c].ID, false)
	e.collectors[c].Endpoint().Purge()
	e.reg.Counter("chaos.collector_restarts").Inc()
	e.emitNodeEvent(events.TypeNodeRestart, string(e.roster.Collectors[c].ID), "restart", false)
	return nil
}

// CrashGovernor marks governor j crashed. The remaining governors run
// rounds without it: its stake is treated as zero in elections and it
// neither screens nor appends until restarted. At least one governor
// must stay live.
func (e *Engine) CrashGovernor(j int) error {
	if j < 0 || j >= len(e.governors) || e.governorDown[j] {
		return fmt.Errorf("crash governor %d: %w", j, ErrNodeDown)
	}
	live := 0
	for i, down := range e.governorDown {
		if !down && i != j {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("crash governor %d: no live governor would remain: %w", j, ErrBadConfig)
	}
	e.governorDown[j] = true
	e.bus.SetDown(e.governorIDs[j], true)
	e.governors[j].Endpoint().Purge()
	e.reg.Counter("chaos.governor_crashes").Inc()
	e.emitNodeEvent(events.TypeNodeCrash, string(e.governorIDs[j]), "crash", true)
	return nil
}

// RestartGovernor brings a crashed governor back with a purged inbox.
// Its replica catches up from the tallest live chain at the start of
// the next round (resyncGovernors), so the first post-restart round
// already proposes on a common head.
func (e *Engine) RestartGovernor(j int) error {
	if j < 0 || j >= len(e.governors) || !e.governorDown[j] {
		return fmt.Errorf("restart governor %d: %w", j, ErrNodeDown)
	}
	e.governorDown[j] = false
	e.bus.SetDown(e.governorIDs[j], false)
	e.governors[j].Endpoint().Purge()
	e.reg.Counter("chaos.governor_restarts").Inc()
	e.emitNodeEvent(events.TypeNodeRestart, string(e.governorIDs[j]), "restart", true)
	return nil
}

// IsolateGovernor records the failure-detector verdict for a governor
// cut off by a network partition: excluded from rounds like a crashed
// one, but its inbox and bus reachability are left alone — the bus
// partition itself decides which messages survive. Reconnect with
// ReconnectGovernor once the partition heals.
func (e *Engine) IsolateGovernor(j int) error {
	if j < 0 || j >= len(e.governors) || e.governorDown[j] {
		return fmt.Errorf("isolate governor %d: %w", j, ErrNodeDown)
	}
	e.governorDown[j] = true
	e.reg.Counter("chaos.governor_isolations").Inc()
	e.emitNodeEvent(events.TypeNodeCrash, string(e.governorIDs[j]), "partition", true)
	return nil
}

// ReconnectGovernor reverses IsolateGovernor after a partition heals.
// Stale messages queued during the partition are purged — the governor
// resyncs from the chain, not from an expired round's traffic.
func (e *Engine) ReconnectGovernor(j int) error {
	if j < 0 || j >= len(e.governors) || !e.governorDown[j] {
		return fmt.Errorf("reconnect governor %d: %w", j, ErrNodeDown)
	}
	e.governorDown[j] = false
	e.governors[j].Endpoint().Purge()
	e.reg.Counter("chaos.governor_reconnects").Inc()
	e.emitNodeEvent(events.TypeNodeRestart, string(e.governorIDs[j]), "reconnect", true)
	return nil
}

// CollectorDown reports collector c's failure-detector state.
func (e *Engine) CollectorDown(c int) bool {
	return c >= 0 && c < len(e.collectorDown) && e.collectorDown[c]
}

// GovernorDown reports governor j's failure-detector state.
func (e *Engine) GovernorDown(j int) bool {
	return j >= 0 && j < len(e.governorDown) && e.governorDown[j]
}

// Collectors returns n, the collector count.
func (e *Engine) Collectors() int { return len(e.collectors) }

// liveGovernors returns the indices not currently marked down, in
// order.
func (e *Engine) liveGovernors() []int {
	out := make([]int, 0, len(e.governors))
	for j, down := range e.governorDown {
		if !down {
			out = append(out, j)
		}
	}
	return out
}

// resyncGovernors brings every live replica up to the tallest live
// chain before a round starts. A governor that missed blocks — crashed,
// partitioned, or simply unlucky with drops — verifies each missing
// block against its proposer's key and appends it, exactly as if the
// original broadcast had arrived late.
func (e *Engine) resyncGovernors() error {
	live := e.liveGovernors()
	if len(live) == 0 {
		return fmt.Errorf("no live governor: %w", ErrRoundAborted)
	}
	src, maxH := -1, uint64(0)
	for _, j := range live {
		if h := e.governors[j].Store().Height(); src == -1 || h > maxH {
			src, maxH = j, h
		}
	}
	blocksSynced := e.reg.Counter("chaos.blocks_synced")
	for _, j := range live {
		g := e.governors[j]
		if g.Store().Height() >= maxH {
			continue
		}
		e.reg.Counter("chaos.governor_resyncs").Inc()
		for g.Store().Height() < maxH {
			serial := g.Store().Height() + 1
			b, err := e.governors[src].Store().Get(serial)
			if err != nil {
				return fmt.Errorf("resync governor %d block %d: %w", j, serial, err)
			}
			proposer, err := decodeGovernorIndex(b.Proposer)
			if err != nil {
				return fmt.Errorf("resync governor %d block %d: %w", j, serial, err)
			}
			if err := g.AcceptBlock(b, b.Proposer, e.govPubs[proposer]); err != nil {
				return fmt.Errorf("resync governor %d block %d: %w", j, serial, err)
			}
			blocksSynced.Inc()
		}
	}
	return nil
}

// publishChaosMetrics snapshots fault-related per-node counters into
// the registry after each round.
func (e *Engine) publishChaosMetrics() {
	silent := 0
	for _, g := range e.governors {
		silent += g.Stats().SilentReports
	}
	e.reg.Gauge("chaos.silent_reports").Set(float64(silent))
	st := e.bus.Stats()
	e.reg.Gauge("chaos.bus_dropped").Set(float64(st.Dropped))
	e.reg.Gauge("chaos.bus_duplicated").Set(float64(st.Duplicated))
	e.reg.Gauge("chaos.bus_partition_dropped").Set(float64(st.PartitionDropped))
	e.reg.Gauge("chaos.bus_down_dropped").Set(float64(st.DownDropped))
	e.reg.Gauge("network.inflight_dropped").Set(float64(st.InflightDropped))
}

// abortable classifies an error from a round phase: message loss shows
// up as an incomplete election or a block nobody received, which is a
// recoverable abort, not a safety failure.
func abortable(err error) bool {
	return errors.Is(err, ErrRoundAborted)
}
