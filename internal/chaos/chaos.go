// Package chaos is the seeded fault-injection harness: it drives the
// network.Bus fault hooks and the engine's crash–restart API from a
// declarative Plan, so a test (or an experiment) can subject a chain
// to message loss, duplication, reordering, partitions, and node
// crashes and still replay the exact same fault schedule on demand.
//
// Every per-message decision is a pure hash of (seed, message
// sequence number, recipient, fault kind). Sequence numbers are
// assigned on the engine goroutine in a fixed order regardless of the
// worker count — PR 1's determinism argument — so a (seed, plan) pair
// produces byte-identical faults, chains, and reputation tables at
// workers=1 and workers=8. The chaos test suite holds the protocol to
// exactly that.
//
// Faults fall into the two classes engine/degrade.go distinguishes:
// crashes and partitions are *detected* (the Injector tells the engine,
// which excludes the node and proceeds with the quorum), while drop,
// duplicate, and reorder faults are *undetected* (the engine either
// absorbs them or aborts the round recoverably).
package chaos

import (
	"fmt"
	"sync/atomic"

	"repchain/internal/core"
	"repchain/internal/identity"
	"repchain/internal/network"
)

// Plan is one deterministic fault schedule. Probabilistic faults
// (Drop, Duplicate) and Reorder apply to every message sent while the
// round counter is inside [FaultFrom, FaultUntil); structural faults
// (partition, crashes) are applied entering FaultFrom and reverted
// entering FaultUntil.
type Plan struct {
	// Name labels the plan in tests and metrics.
	Name string
	// Drop is the per-delivery probability of losing a message.
	Drop float64
	// Duplicate is the per-delivery probability of delivering one
	// extra copy.
	Duplicate float64
	// Reorder, when set, perturbs delivery order within each Receive
	// drain by a seeded hash of the message, deliberately breaking the
	// bus's total-order guarantee.
	Reorder bool
	// FaultFrom and FaultUntil bound the fault window in rounds:
	// active while FaultFrom ≤ round < FaultUntil.
	FaultFrom  uint64
	FaultUntil uint64
	// PartitionGovernors are governor indices isolated in their own
	// island for the window; everyone else stays connected.
	PartitionGovernors []int
	// CrashCollectors are collector indices crashed at FaultFrom and
	// restarted at FaultUntil.
	CrashCollectors []int
	// CrashGovernors are governor indices crashed at FaultFrom and
	// restarted at FaultUntil.
	CrashGovernors []int
}

// Window reports whether round r falls inside the fault window.
func (p Plan) Window(r uint64) bool { return r >= p.FaultFrom && r < p.FaultUntil }

// The standard plan set of the chaos suite: one plan per fault family,
// all faulting rounds [2, 5) of an 8-round run.

// Drop10 loses 10% of all deliveries.
func Drop10() Plan {
	return Plan{Name: "drop10", Drop: 0.10, FaultFrom: 2, FaultUntil: 5}
}

// DupReorder duplicates 20% of deliveries and perturbs drain order.
func DupReorder() Plan {
	return Plan{Name: "dup+reorder", Duplicate: 0.20, Reorder: true, FaultFrom: 2, FaultUntil: 5}
}

// PartitionThenHeal cuts governor 2 off from the rest of the network,
// then heals.
func PartitionThenHeal() Plan {
	return Plan{Name: "partition-then-heal", PartitionGovernors: []int{2}, FaultFrom: 2, FaultUntil: 5}
}

// CrashOneCollector crashes collector 1 mid-run and restarts it.
func CrashOneCollector() Plan {
	return Plan{Name: "crash-1-collector", CrashCollectors: []int{1}, FaultFrom: 2, FaultUntil: 5}
}

// CrashOneGovernor crashes governor 1 mid-run and restarts it.
func CrashOneGovernor() Plan {
	return Plan{Name: "crash-1-governor", CrashGovernors: []int{1}, FaultFrom: 2, FaultUntil: 5}
}

// Plans returns the standard suite.
func Plans() []Plan {
	return []Plan{Drop10(), DupReorder(), PartitionThenHeal(), CrashOneCollector(), CrashOneGovernor()}
}

// Injector installs a Plan's hooks on an engine's bus and applies its
// structural transitions at round boundaries. Probabilistic hooks read
// only atomics plus pure message data, so they are safe under the
// engine's parallel Receive fan-out.
type Injector struct {
	e    *core.Engine
	plan Plan
	seed int64

	// active gates the probabilistic hooks; structural faults are
	// applied directly to the engine/bus in BeginRound.
	active atomic.Bool
}

// Salt values separating the decision streams of the different fault
// kinds: the drop coin of a message must not correlate with its
// duplicate coin.
const (
	saltDrop = 0x9e3779b97f4a7c15
	saltDup  = 0xc2b2ae3d27d4eb4f
	saltOrd  = 0x165667b19e3779f9
)

// New installs plan's hooks on e's bus and returns the injector.
// Callers drive it with BeginRound before every engine round.
func New(e *core.Engine, plan Plan, seed int64) *Injector {
	in := &Injector{e: e, plan: plan, seed: seed}
	bus := e.Bus()
	if plan.Drop > 0 {
		bus.SetDropFunc(func(m network.Message, to identity.NodeID) bool {
			return in.active.Load() && coin(seed, m.Seq, to, saltDrop) < plan.Drop
		})
	}
	if plan.Duplicate > 0 {
		bus.SetDupFunc(func(m network.Message, to identity.NodeID) int {
			if in.active.Load() && coin(seed, m.Seq, to, saltDup) < plan.Duplicate {
				return 1
			}
			return 0
		})
	}
	if plan.Reorder {
		bus.SetOrderFunc(func(m network.Message, to identity.NodeID) uint64 {
			if !in.active.Load() {
				return m.Seq
			}
			return hash64(uint64(seed), m.Seq, idHash(to), saltOrd)
		})
	}
	return in
}

// BeginRound applies the plan's transitions for round r: entering
// FaultFrom arms the probabilistic hooks, crashes the listed nodes,
// and installs the partition; entering FaultUntil reverts all of it.
// Rounds are the caller's counter (0-based), matching Plan.Window.
func (in *Injector) BeginRound(r uint64) error {
	if r == in.plan.FaultFrom {
		in.active.Store(true)
		for _, c := range in.plan.CrashCollectors {
			if err := in.e.CrashCollector(c); err != nil {
				return fmt.Errorf("plan %s: %w", in.plan.Name, err)
			}
		}
		for _, j := range in.plan.CrashGovernors {
			if err := in.e.CrashGovernor(j); err != nil {
				return fmt.Errorf("plan %s: %w", in.plan.Name, err)
			}
		}
		if len(in.plan.PartitionGovernors) > 0 {
			if err := in.partition(); err != nil {
				return err
			}
		}
	}
	if r == in.plan.FaultUntil {
		in.active.Store(false)
		for _, c := range in.plan.CrashCollectors {
			if err := in.e.RestartCollector(c); err != nil {
				return fmt.Errorf("plan %s: %w", in.plan.Name, err)
			}
		}
		for _, j := range in.plan.CrashGovernors {
			if err := in.e.RestartGovernor(j); err != nil {
				return fmt.Errorf("plan %s: %w", in.plan.Name, err)
			}
		}
		if len(in.plan.PartitionGovernors) > 0 {
			in.e.Bus().SetPartitions()
			for _, j := range in.plan.PartitionGovernors {
				if err := in.e.ReconnectGovernor(j); err != nil {
					return fmt.Errorf("plan %s: %w", in.plan.Name, err)
				}
			}
		}
	}
	return nil
}

// partition puts each listed governor in its own island and everyone
// else in a majority island, then records the failure-detector verdict
// with the engine.
func (in *Injector) partition() error {
	isolated := make(map[int]bool, len(in.plan.PartitionGovernors))
	for _, j := range in.plan.PartitionGovernors {
		isolated[j] = true
	}
	roster := in.e.Roster()
	var islands [][]identity.NodeID
	var rest []identity.NodeID
	for _, p := range roster.Providers {
		rest = append(rest, p.ID)
	}
	for _, c := range roster.Collectors {
		rest = append(rest, c.ID)
	}
	for j, g := range roster.Governors {
		if isolated[j] {
			islands = append(islands, []identity.NodeID{g.ID})
		} else {
			rest = append(rest, g.ID)
		}
	}
	islands = append(islands, rest)
	in.e.Bus().SetPartitions(islands...)
	for _, j := range in.plan.PartitionGovernors {
		if err := in.e.IsolateGovernor(j); err != nil {
			return fmt.Errorf("plan %s: %w", in.plan.Name, err)
		}
	}
	return nil
}

// coin maps (seed, seq, recipient, salt) to a uniform float in [0, 1).
// It is the only source of randomness in the harness: no global RNG,
// no time, no iteration order — replaying the same messages yields the
// same faults.
func coin(seed int64, seq uint64, to identity.NodeID, salt uint64) float64 {
	h := hash64(uint64(seed), seq, idHash(to), salt)
	return float64(h>>11) / float64(1<<53)
}

// hash64 is an FNV-1a style mix over four words.
func hash64(a, b, c, d uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range [4]uint64{a, b, c, d} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	// Final avalanche (splitmix64 tail) so low bits are well mixed.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func idHash(id identity.NodeID) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	return h
}
