package chaos_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repchain/internal/chaos"
	"repchain/internal/core"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/reputation"
	tracepkg "repchain/internal/trace"
	"repchain/internal/tx"
)

const (
	rounds = 8
	perRnd = 8
	healBy = 2 // liveness bound: rounds after FaultUntil within which a block must commit
)

var oracle = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func config(seed int64, workers int) core.Config {
	return core.Config{
		Spec:        identity.TopologySpec{Providers: 4, Collectors: 4, Degree: 2},
		Governors:   3,
		Params:      reputation.DefaultParams(),
		ArgueWindow: 16,
		MaxDelay:    2,
		Seed:        seed,
		Validator:   oracle,
		Workers:     workers,
		// Tracing and the event log stay on through the whole fault
		// matrix: spans and events must never perturb recovery or
		// determinism. Capacities are sized so a full run never wraps —
		// runTrace asserts Dropped() == 0 for both rings, making the
		// canonical comparisons below total rather than windowed.
		TraceCapacity: 8192,
		EventCapacity: 8192,
	}
}

// trace is the observable outcome of one chaos run: a per-round
// commit/abort record, each governor's final reputation snapshot, and
// each replica's final head. Two runs of the same (seed, plan) must
// produce equal traces at any worker count.
type trace struct {
	rounds []string
	reps   [][]byte
	heads  []string
	// spans is the canonical span-tree rendering (sorted, with the
	// scheduling-dependent Seq and the always-zero Wall stripped) and
	// events the canonical per-node event subsequences; both must be
	// byte-identical across worker counts.
	spans  string
	events string
}

// canonicalSpans renders the recorder's spans with Seq and Wall
// stripped (Seq depends on goroutine interleaving, Wall is zero in
// deterministic mode) and sorts the lines: the span *tree* must be
// identical across worker counts even though emission order is not.
func canonicalSpans(spans []tracepkg.Span) string {
	lines := make([]string, 0, len(spans))
	for _, s := range spans {
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%s|%s|%d", s.Trace, s.Stage, s.Node, s.Round)
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, "|%s=%s", a.Key, a.Value)
		}
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// canonicalEvents renders each node's event subsequence in emission
// order (each node is single-threaded, so its order is deterministic)
// with the globally-interleaved Seq stripped, then concatenates the
// nodes sorted by name.
func canonicalEvents(evs []events.Event) string {
	byNode := make(map[string][]string)
	for _, e := range evs {
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%d", e.Type, e.Round)
		for _, a := range e.Attrs {
			fmt.Fprintf(&b, "|%s=%s", a.Key, a.Value)
		}
		byNode[e.Node] = append(byNode[e.Node], b.String())
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var b strings.Builder
	for _, n := range nodes {
		fmt.Fprintf(&b, "## %s\n%s\n", n, strings.Join(byNode[n], "\n"))
	}
	return b.String()
}

// runTrace executes an 8-round chaos run and asserts the in-run safety
// properties: only recoverable aborts, no forked prefix between any
// two replicas, every chain verifiable, and a commit within healBy
// rounds of the faults clearing.
func runTrace(t *testing.T, plan chaos.Plan, seed int64, workers int) trace {
	t.Helper()
	e, err := core.New(config(seed, workers))
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	defer e.Close()
	inj := chaos.New(e, plan, seed)

	var tr trace
	providers := e.Roster().Topology.Providers()
	healed := -1
	for r := 0; r < rounds; r++ {
		if err := inj.BeginRound(uint64(r)); err != nil {
			t.Fatalf("BeginRound(%d): %v", r, err)
		}
		for i := 0; i < perRnd; i++ {
			valid := i%4 != 3
			b := byte(0)
			if valid {
				b = 1
			}
			payload := []byte{b, byte(i), byte(r)}
			if _, err := e.SubmitTx(i%providers, "chaos/tx", payload, valid); err != nil {
				t.Fatalf("SubmitTx round %d: %v", r, err)
			}
		}
		res, err := e.RunRound()
		switch {
		case err == nil:
			tr.rounds = append(tr.rounds, fmt.Sprintf("commit:%d:%x", res.Serial, res.Block.Hash()))
			if r >= int(plan.FaultUntil) && healed < 0 {
				healed = r
			}
		case errors.Is(err, core.ErrRoundAborted):
			tr.rounds = append(tr.rounds, "abort")
		default:
			t.Fatalf("round %d: unrecoverable error %v", r, err)
		}
	}
	if healed < 0 || healed >= int(plan.FaultUntil)+healBy {
		t.Fatalf("no block committed within %d rounds of faults clearing (rounds: %v)", healBy, tr.rounds)
	}

	// No fork: every pair of replicas agrees on their common prefix,
	// and every chain replays cleanly.
	for j := 0; j < e.Governors(); j++ {
		if err := ledger.VerifyChain(e.Governor(j).Store()); err != nil {
			t.Fatalf("governor %d chain corrupt: %v", j, err)
		}
	}
	for a := 0; a < e.Governors(); a++ {
		for b := a + 1; b < e.Governors(); b++ {
			sa, sb := e.Governor(a).Store(), e.Governor(b).Store()
			min := sa.Height()
			if h := sb.Height(); h < min {
				min = h
			}
			for s := uint64(1); s <= min; s++ {
				ba, err := sa.Get(s)
				if err != nil {
					t.Fatal(err)
				}
				bb, err := sb.Get(s)
				if err != nil {
					t.Fatal(err)
				}
				if ba.Hash() != bb.Hash() {
					t.Fatalf("fork: governors %d and %d disagree at serial %d", a, b, s)
				}
			}
		}
	}

	// Neither ring may have wrapped, or the canonical comparisons and
	// the replay below would silently run on a truncated window.
	if d := e.Tracer().Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d spans; raise TraceCapacity", d)
	}
	if d := e.Events().Dropped(); d != 0 {
		t.Fatalf("event ring dropped %d events; raise EventCapacity", d)
	}
	tr.spans = canonicalSpans(e.Tracer().Spans())
	tr.events = canonicalEvents(e.Events().Events())

	// The event log alone must reconstruct every governor's reputation
	// table: replay each governor's reputation.* subsequence into a
	// fresh table and demand snapshot equality with the live one.
	for j := 0; j < e.Governors(); j++ {
		fresh, err := reputation.NewTable(e.Roster().Topology, reputation.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		gid := string(e.Governor(j).ID())
		if err := events.ReplayReputation(e.Events().Events(), gid, fresh); err != nil {
			t.Fatalf("governor %d event replay: %v", j, err)
		}
		if !bytes.Equal(fresh.Snapshot(), e.Governor(j).Table().Snapshot()) {
			t.Fatalf("governor %d: replayed reputation table diverges from the live one", j)
		}
	}

	for j := 0; j < e.Governors(); j++ {
		tr.reps = append(tr.reps, e.Governor(j).Table().Snapshot())
		st := e.Governor(j).Store()
		head := "genesis"
		if st.Height() > 0 {
			b, err := st.Get(st.Height())
			if err != nil {
				t.Fatal(err)
			}
			head = fmt.Sprintf("%x", b.Hash())
		}
		tr.heads = append(tr.heads, fmt.Sprintf("%d:%s", st.Height(), head))
	}
	return tr
}

// TestChaosMatrix is the acceptance matrix: seeds {1, 7, 42} × the
// five standard fault plans, each run at workers 1 and 4. Per (seed,
// plan) the two runs must agree byte-for-byte on the round-by-round
// commit/abort pattern, every block hash, every replica head, and
// every governor's serialized reputation table.
func TestChaosMatrix(t *testing.T) {
	for _, plan := range chaos.Plans() {
		for _, seed := range []int64{1, 7, 42} {
			plan, seed := plan, seed
			t.Run(fmt.Sprintf("%s/seed=%d", plan.Name, seed), func(t *testing.T) {
				t1 := runTrace(t, plan, seed, 1)
				t4 := runTrace(t, plan, seed, 4)
				for r := range t1.rounds {
					if t1.rounds[r] != t4.rounds[r] {
						t.Fatalf("round %d diverges across workers: %q vs %q", r, t1.rounds[r], t4.rounds[r])
					}
				}
				for j := range t1.heads {
					if t1.heads[j] != t4.heads[j] {
						t.Fatalf("governor %d head diverges across workers: %s vs %s", j, t1.heads[j], t4.heads[j])
					}
				}
				for j := range t1.reps {
					if !bytes.Equal(t1.reps[j], t4.reps[j]) {
						t.Fatalf("governor %d reputation snapshot diverges across workers", j)
					}
				}
				if t1.spans != t4.spans {
					t.Fatal("canonical span tree diverges across workers")
				}
				if t1.events != t4.events {
					t.Fatal("canonical per-node event streams diverge across workers")
				}
			})
		}
	}
}

// TestPlansInjectFaults sanity-checks that each probabilistic plan
// actually exercises its fault family: a clean run would vacuously
// pass the matrix.
func TestPlansInjectFaults(t *testing.T) {
	check := func(plan chaos.Plan, stat func(e *core.Engine) int64) {
		t.Helper()
		e, err := core.New(config(42, 1))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		inj := chaos.New(e, plan, 42)
		providers := e.Roster().Topology.Providers()
		for r := 0; r < rounds; r++ {
			if err := inj.BeginRound(uint64(r)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < perRnd; i++ {
				if _, err := e.SubmitTx(i%providers, "chaos/tx", []byte{1, byte(i), byte(r)}, true); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.RunRound(); err != nil && !errors.Is(err, core.ErrRoundAborted) {
				t.Fatal(err)
			}
		}
		if got := stat(e); got == 0 {
			t.Fatalf("plan %s injected no faults", plan.Name)
		}
	}
	check(chaos.Drop10(), func(e *core.Engine) int64 { return e.Bus().Stats().Dropped })
	check(chaos.DupReorder(), func(e *core.Engine) int64 { return e.Bus().Stats().Duplicated })
	check(chaos.PartitionThenHeal(), func(e *core.Engine) int64 { return e.Bus().Stats().PartitionDropped })
	check(chaos.CrashOneCollector(), func(e *core.Engine) int64 { return e.Bus().Stats().DownDropped })
	check(chaos.CrashOneGovernor(), func(e *core.Engine) int64 { return e.Bus().Stats().DownDropped })
}

// TestWindow pins the fault-window arithmetic the whole suite rests
// on: [FaultFrom, FaultUntil) is half-open.
func TestWindow(t *testing.T) {
	p := chaos.Plan{FaultFrom: 2, FaultUntil: 5}
	for r, want := range map[uint64]bool{0: false, 1: false, 2: true, 4: true, 5: false, 7: false} {
		if got := p.Window(r); got != want {
			t.Fatalf("Window(%d) = %v, want %v", r, got, want)
		}
	}
}
