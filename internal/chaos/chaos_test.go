package chaos_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repchain/internal/chaos"
	"repchain/internal/core"
	"repchain/internal/identity"
	"repchain/internal/ledger"
	"repchain/internal/reputation"
	"repchain/internal/tx"
)

const (
	rounds = 8
	perRnd = 8
	healBy = 2 // liveness bound: rounds after FaultUntil within which a block must commit
)

var oracle = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func config(seed int64, workers int) core.Config {
	return core.Config{
		Spec:        identity.TopologySpec{Providers: 4, Collectors: 4, Degree: 2},
		Governors:   3,
		Params:      reputation.DefaultParams(),
		ArgueWindow: 16,
		MaxDelay:    2,
		Seed:        seed,
		Validator:   oracle,
		Workers:     workers,
		// Tracing stays on through the whole fault matrix: spans must
		// never perturb recovery or determinism.
		TraceCapacity: 2048,
	}
}

// trace is the observable outcome of one chaos run: a per-round
// commit/abort record, each governor's final reputation snapshot, and
// each replica's final head. Two runs of the same (seed, plan) must
// produce equal traces at any worker count.
type trace struct {
	rounds []string
	reps   [][]byte
	heads  []string
}

// runTrace executes an 8-round chaos run and asserts the in-run safety
// properties: only recoverable aborts, no forked prefix between any
// two replicas, every chain verifiable, and a commit within healBy
// rounds of the faults clearing.
func runTrace(t *testing.T, plan chaos.Plan, seed int64, workers int) trace {
	t.Helper()
	e, err := core.New(config(seed, workers))
	if err != nil {
		t.Fatalf("New() error = %v", err)
	}
	defer e.Close()
	inj := chaos.New(e, plan, seed)

	var tr trace
	providers := e.Roster().Topology.Providers()
	healed := -1
	for r := 0; r < rounds; r++ {
		if err := inj.BeginRound(uint64(r)); err != nil {
			t.Fatalf("BeginRound(%d): %v", r, err)
		}
		for i := 0; i < perRnd; i++ {
			valid := i%4 != 3
			b := byte(0)
			if valid {
				b = 1
			}
			payload := []byte{b, byte(i), byte(r)}
			if _, err := e.SubmitTx(i%providers, "chaos/tx", payload, valid); err != nil {
				t.Fatalf("SubmitTx round %d: %v", r, err)
			}
		}
		res, err := e.RunRound()
		switch {
		case err == nil:
			tr.rounds = append(tr.rounds, fmt.Sprintf("commit:%d:%x", res.Serial, res.Block.Hash()))
			if r >= int(plan.FaultUntil) && healed < 0 {
				healed = r
			}
		case errors.Is(err, core.ErrRoundAborted):
			tr.rounds = append(tr.rounds, "abort")
		default:
			t.Fatalf("round %d: unrecoverable error %v", r, err)
		}
	}
	if healed < 0 || healed >= int(plan.FaultUntil)+healBy {
		t.Fatalf("no block committed within %d rounds of faults clearing (rounds: %v)", healBy, tr.rounds)
	}

	// No fork: every pair of replicas agrees on their common prefix,
	// and every chain replays cleanly.
	for j := 0; j < e.Governors(); j++ {
		if err := ledger.VerifyChain(e.Governor(j).Store()); err != nil {
			t.Fatalf("governor %d chain corrupt: %v", j, err)
		}
	}
	for a := 0; a < e.Governors(); a++ {
		for b := a + 1; b < e.Governors(); b++ {
			sa, sb := e.Governor(a).Store(), e.Governor(b).Store()
			min := sa.Height()
			if h := sb.Height(); h < min {
				min = h
			}
			for s := uint64(1); s <= min; s++ {
				ba, err := sa.Get(s)
				if err != nil {
					t.Fatal(err)
				}
				bb, err := sb.Get(s)
				if err != nil {
					t.Fatal(err)
				}
				if ba.Hash() != bb.Hash() {
					t.Fatalf("fork: governors %d and %d disagree at serial %d", a, b, s)
				}
			}
		}
	}

	for j := 0; j < e.Governors(); j++ {
		tr.reps = append(tr.reps, e.Governor(j).Table().Snapshot())
		st := e.Governor(j).Store()
		head := "genesis"
		if st.Height() > 0 {
			b, err := st.Get(st.Height())
			if err != nil {
				t.Fatal(err)
			}
			head = fmt.Sprintf("%x", b.Hash())
		}
		tr.heads = append(tr.heads, fmt.Sprintf("%d:%s", st.Height(), head))
	}
	return tr
}

// TestChaosMatrix is the acceptance matrix: seeds {1, 7, 42} × the
// five standard fault plans, each run at workers 1 and 4. Per (seed,
// plan) the two runs must agree byte-for-byte on the round-by-round
// commit/abort pattern, every block hash, every replica head, and
// every governor's serialized reputation table.
func TestChaosMatrix(t *testing.T) {
	for _, plan := range chaos.Plans() {
		for _, seed := range []int64{1, 7, 42} {
			plan, seed := plan, seed
			t.Run(fmt.Sprintf("%s/seed=%d", plan.Name, seed), func(t *testing.T) {
				t1 := runTrace(t, plan, seed, 1)
				t4 := runTrace(t, plan, seed, 4)
				for r := range t1.rounds {
					if t1.rounds[r] != t4.rounds[r] {
						t.Fatalf("round %d diverges across workers: %q vs %q", r, t1.rounds[r], t4.rounds[r])
					}
				}
				for j := range t1.heads {
					if t1.heads[j] != t4.heads[j] {
						t.Fatalf("governor %d head diverges across workers: %s vs %s", j, t1.heads[j], t4.heads[j])
					}
				}
				for j := range t1.reps {
					if !bytes.Equal(t1.reps[j], t4.reps[j]) {
						t.Fatalf("governor %d reputation snapshot diverges across workers", j)
					}
				}
			})
		}
	}
}

// TestPlansInjectFaults sanity-checks that each probabilistic plan
// actually exercises its fault family: a clean run would vacuously
// pass the matrix.
func TestPlansInjectFaults(t *testing.T) {
	check := func(plan chaos.Plan, stat func(e *core.Engine) int64) {
		t.Helper()
		e, err := core.New(config(42, 1))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		inj := chaos.New(e, plan, 42)
		providers := e.Roster().Topology.Providers()
		for r := 0; r < rounds; r++ {
			if err := inj.BeginRound(uint64(r)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < perRnd; i++ {
				if _, err := e.SubmitTx(i%providers, "chaos/tx", []byte{1, byte(i), byte(r)}, true); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.RunRound(); err != nil && !errors.Is(err, core.ErrRoundAborted) {
				t.Fatal(err)
			}
		}
		if got := stat(e); got == 0 {
			t.Fatalf("plan %s injected no faults", plan.Name)
		}
	}
	check(chaos.Drop10(), func(e *core.Engine) int64 { return e.Bus().Stats().Dropped })
	check(chaos.DupReorder(), func(e *core.Engine) int64 { return e.Bus().Stats().Duplicated })
	check(chaos.PartitionThenHeal(), func(e *core.Engine) int64 { return e.Bus().Stats().PartitionDropped })
	check(chaos.CrashOneCollector(), func(e *core.Engine) int64 { return e.Bus().Stats().DownDropped })
	check(chaos.CrashOneGovernor(), func(e *core.Engine) int64 { return e.Bus().Stats().DownDropped })
}

// TestWindow pins the fault-window arithmetic the whole suite rests
// on: [FaultFrom, FaultUntil) is half-open.
func TestWindow(t *testing.T) {
	p := chaos.Plan{FaultFrom: 2, FaultUntil: 5}
	for r, want := range map[uint64]bool{0: false, 1: false, 2: true, 4: true, 5: false, 7: false} {
		if got := p.Window(r); got != want {
			t.Fatalf("Window(%d) = %v, want %v", r, got, want)
		}
	}
}
