// Package detrange forbids ranging over a map in the deterministic
// replica packages. Go randomizes map-iteration order per run, so a
// map range whose body feeds blocks, weight updates, or any other
// replicated state is a silent fork generator: two governors walk the
// same map in different orders and commit different bytes. Sites whose
// order provably cannot matter (commutative accumulation, set
// membership) are annotated //repchain:ordered-irrelevant <reason>.
package detrange

import (
	"go/ast"
	"go/types"

	"repchain/tools/analysis"
	"repchain/tools/lint/internal/detscope"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "ordered-irrelevant"

// Analyzer flags range-over-map statements in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "forbid range over maps in deterministic packages unless the " +
		"site is annotated //repchain:ordered-irrelevant <reason>; sort " +
		"the keys into a slice and range that instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !detscope.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			sup.Reportf(pass, rs.For, "range over map %s in deterministic package %s: iteration order is randomized per run; sort the keys first or annotate //repchain:ordered-irrelevant <reason>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
