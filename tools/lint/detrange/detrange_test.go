package detrange_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer,
		"repchain/internal/core/fixture",
		"repchain/internal/transport/fixture",
	)
}
