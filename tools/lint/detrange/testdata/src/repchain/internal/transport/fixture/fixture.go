// Package fixture proves detrange stays silent outside the
// deterministic scope: the transport runtime may range over maps.
package fixture

func fine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
