// Package fixture exercises the detrange analyzer inside the
// deterministic scope.
package fixture

import "sort"

func bad(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map map\[string\]int in deterministic package`
		total += v
	}
	return total
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//repchain:ordered-irrelevant collecting keys to sort below; the append order never escapes
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Ranging the sorted slice needs no annotation.
	for range keys {
	}
	return keys
}

func suppressedTrailing(m map[int]bool) int {
	n := 0
	for k := range m { //repchain:ordered-irrelevant pure count; order cannot matter
		n += k
	}
	return n
}

func reasonlessAnnotation(m map[int]bool) {
	//repchain:ordered-irrelevant // want `missing its mandatory reason`
	for range m { // want `range over map`
	}
}

func slicesAreFine(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

type orders map[uint64]string

func namedMapType(o orders) {
	for range o { // want `range over map`
	}
}
