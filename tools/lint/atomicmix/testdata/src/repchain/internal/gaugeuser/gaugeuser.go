// Package gaugeuser accesses another package's atomic field plainly:
// the census crosses package boundaries.
package gaugeuser

import "repchain/internal/gauge"

func Read(c *gauge.Counter) int64 {
	return c.N // want `sync/atomic`
}
