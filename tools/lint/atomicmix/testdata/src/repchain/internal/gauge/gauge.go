// Package gauge exercises atomicmix: fields touched by sync/atomic in
// one place and plainly (bare or mutex-guarded) in another.
package gauge

import (
	"sync"
	"sync/atomic"
)

// Counter's N is exported so another fixture package can access it
// plainly (the census is module-wide).
type Counter struct {
	N int64
}

func (c *Counter) Add() { atomic.AddInt64(&c.N, 1) }

type Gauge struct {
	hits  int64
	mu    sync.Mutex
	level int64
	clean int64
}

func (g *Gauge) Inc() { atomic.AddInt64(&g.hits, 1) }

func (g *Gauge) Hits() int64 { return atomic.LoadInt64(&g.hits) }

// Peek reads an atomic field without the accessor.
func (g *Gauge) Peek() int64 {
	return g.hits // want `sync/atomic`
}

// SetLevel writes under the mutex, but the atomic readers below never
// take it: still a race, still flagged.
func (g *Gauge) SetLevel(v int64) {
	g.mu.Lock()
	g.level = v // want `sync/atomic`
	g.mu.Unlock()
}

func (g *Gauge) LevelSnapshot() int64 { return atomic.LoadInt64(&g.level) }

// CleanInc touches a field nothing accesses atomically: silent.
func (g *Gauge) CleanInc() { g.clean++ }

// NewGauge initializes before publication: a reasoned suppression.
func NewGauge() *Gauge {
	g := &Gauge{}
	g.hits = 7 //repchain:atomicmix-ok fixture: not yet shared, single goroutine owns g
	return g
}

// Reset has a reasonless suppression: reported, not suppressed.
func Reset(g *Gauge) {
	g.hits = 0 //repchain:atomicmix-ok // want `missing its mandatory reason` `sync/atomic`
}
