// Package atomicmix flags struct fields that are accessed through
// sync/atomic somewhere in the module and plainly somewhere else. A
// plain read of an atomically written field is a data race, and a
// mutex around the plain access does not help: the atomic side does
// not take the mutex, so the two sides still race. The census of
// atomic fields is module-wide (built by the interprocedural engine),
// so a package that plainly reads a field another package updates
// atomically is caught too. Accesses that are provably
// single-threaded at that point (constructors before publication)
// are annotated //repchain:atomicmix-ok <reason>.
package atomicmix

import (
	"fmt"
	"path/filepath"

	"repchain/tools/analysis"
	"repchain/tools/analysis/interproc"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "atomicmix-ok"

// Analyzer reports plain accesses to fields in the atomic census.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "forbid mixing sync/atomic and plain (even mutex-guarded) accesses " +
		"to the same struct field anywhere in the module; annotate provably " +
		"unshared accesses //repchain:atomicmix-ok <reason>",
	Prepare: prepare,
	Run:     run,
}

func prepare(l *analysis.Loader, _ []*analysis.Package) error {
	interproc.Get(l)
	return nil
}

func run(pass *analysis.Pass) error {
	prog := interproc.ByFset(pass.Fset)
	if prog == nil {
		return fmt.Errorf("atomicmix: no interprocedural program; the driver must call Prepare first")
	}
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range prog.AtomicFindings(pass.Pkg.Path()) {
		apos := pass.Fset.Position(f.AtomicPos)
		sup.Reportf(pass, f.Pos,
			"plain access to field %s, which is accessed via sync/atomic at %s:%d; use the atomic accessor here too or annotate //repchain:atomicmix-ok <reason>",
			f.Field, filepath.Base(apos.Filename), apos.Line)
	}
	return nil
}
