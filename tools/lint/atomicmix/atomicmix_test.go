package atomicmix_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer,
		"repchain/internal/gauge",
		"repchain/internal/gaugeuser",
	)
}
