// Package pump exercises goroleak: goroutines with and without an
// exit path, directly and through callees.
package pump

// Drain never returns: unconditional loop, no exit.
func Drain(ch chan int) {
	for {
		<-ch
	}
}

// relay never returns: the select has no terminating case.
func relay(in, out chan int) {
	for {
		select {
		case v := <-in:
			out <- v
		}
	}
}

// worker has a cancellation path: the done case returns.
func worker(in chan int, done chan struct{}) {
	for {
		select {
		case <-in:
		case <-done:
			return
		}
	}
}

// spin is leaky one hop removed: it synchronously calls Drain.
func spin() { Drain(nil) }

// bounded exits when the channel closes: close-driven ranges end.
func bounded(ch chan int) {
	for range ch {
	}
}

// escape has an unconditional loop, but a labeled break leaves it.
func escape(ch chan int) {
outer:
	for {
		for {
			if <-ch == 0 {
				break outer
			}
		}
	}
}

func Spawn() {
	go Drain(nil)      // want `never exits`
	go relay(nil, nil) // want `never exits`
	go spin()          // want `never exits`
	go func() {        // want `never exits`
		for {
		}
	}()
	go func() { // want `never exits`
		Drain(nil)
	}()
	go worker(nil, nil)
	go bounded(nil)
	go escape(nil)
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
	go Drain(nil) //repchain:goroleak-ok fixture: deliberate process-lifetime pump
}

// SpawnUnreasoned's suppression has no reason: the annotation is a
// finding and suppresses nothing.
func SpawnUnreasoned() {
	go Drain(nil) //repchain:goroleak-ok // want `missing its mandatory reason` `never exits`
}
