// Package pumpuser spawns another package's leaky function: the leak
// predicate is a cross-package summary.
package pumpuser

import "repchain/internal/pump"

func Start() {
	go pump.Drain(nil) // want `never exits`
}
