package goroleak_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer,
		"repchain/internal/pump",
		"repchain/internal/pumpuser",
	)
}
