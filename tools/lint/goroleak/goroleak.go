// Package goroleak flags goroutines spawned with no join or
// cancellation path: the `go` statement's target (a function literal
// or a named function, resolved through the interprocedural engine's
// summaries) contains an unconditional loop with no reachable exit —
// no return, no break binding to the loop, no goto, no panic — and so
// can never be joined by a WaitGroup, cancelled through a context, or
// unblocked by a Close. Such goroutines outlive every test and node
// shutdown, pinning memory and (worse) still mutating state after the
// component that spawned them was torn down. Deliberately
// process-lifetime goroutines are annotated
// //repchain:goroleak-ok <reason>.
package goroleak

import (
	"fmt"

	"repchain/tools/analysis"
	"repchain/tools/analysis/interproc"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "goroleak-ok"

// Analyzer reports `go` statements whose goroutine can never exit.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "forbid spawning goroutines that can never exit (unconditional " +
		"loop with no return, break, or cancellation path, directly or " +
		"through callees); annotate deliberate process-lifetime goroutines " +
		"//repchain:goroleak-ok <reason>",
	Prepare: prepare,
	Run:     run,
}

func prepare(l *analysis.Loader, _ []*analysis.Package) error {
	interproc.Get(l)
	return nil
}

func run(pass *analysis.Pass) error {
	prog := interproc.ByFset(pass.Fset)
	if prog == nil {
		return fmt.Errorf("goroleak: no interprocedural program; the driver must call Prepare first")
	}
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range prog.LeakFindings(pass.Pkg.Path()) {
		loc := ""
		if f.LoopPos.IsValid() {
			posn := pass.Fset.Position(f.LoopPos)
			loc = fmt.Sprintf(" (loop at line %d)", posn.Line)
		}
		sup.Reportf(pass, f.Pos,
			"goroutine never exits: %s runs an unconditional loop with no return, break, or cancellation path%s; add one or annotate //repchain:goroleak-ok <reason>",
			f.What, loc)
	}
	return nil
}
