package wallclock_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer,
		"repchain/internal/consensus/fixture",
		"repchain/internal/trace/fixture",
	)
}
