// Package wallclock forbids wall-clock reads and global (unseeded)
// math/rand state in the deterministic replica packages. time.Now,
// time.Since, and the package-level math/rand functions draw from
// state no replica shares, so a single call on a consensus path forks
// the alliance. Seeded generators (rand.New(rand.NewSource(seed)))
// and *rand.Rand methods are allowed — the harness owns the seed. The
// transport runtime, admin server, and trace timestamping live outside
// the deterministic scope and are therefore untouched; the rare
// in-scope observational read (stage timing that never feeds a
// protocol decision) is annotated //repchain:wallclock-ok <reason>.
package wallclock

import (
	"go/ast"
	"go/types"

	"repchain/tools/analysis"
	"repchain/tools/lint/internal/detscope"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "wallclock-ok"

// Analyzer flags wall-clock and global-randomness reads in
// deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until and package-level " +
		"math/rand functions in deterministic packages; use the seeded " +
		"*rand.Rand the harness injects, or annotate a purely " +
		"observational site //repchain:wallclock-ok <reason>",
	Run: run,
}

// bannedTime are the time functions that read the wall clock.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are the math/rand package-level functions that construct
// seeded generators rather than touching the global source.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !detscope.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods (e.g. *rand.Rand) are fine
				return true
			}
			var verdict string
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					verdict = "reads the wall clock"
				}
			case "math/rand", "math/rand/v2":
				if !allowedRand[fn.Name()] {
					verdict = "draws from the unseeded global math/rand source"
				}
			}
			if verdict == "" {
				return true
			}
			sup.Reportf(pass, sel.Pos(), "%s.%s %s in deterministic package %s: replicas would diverge; use the injected seeded state or annotate //repchain:wallclock-ok <reason>",
				fn.Pkg().Name(), fn.Name(), verdict, pass.Pkg.Path())
			return true
		})
	}
	return nil
}
