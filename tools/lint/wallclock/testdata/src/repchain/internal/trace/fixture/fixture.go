// Package fixture proves wallclock stays silent outside the
// deterministic scope: trace timestamping may read the wall clock and
// the transport/admin runtimes may use time freely.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() }

func jitter() int { return rand.Intn(10) }
