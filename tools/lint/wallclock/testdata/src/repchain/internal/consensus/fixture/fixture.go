// Package fixture exercises the wallclock analyzer inside the
// deterministic scope.
package fixture

import (
	"math/rand"
	"time"
)

func clocks(epoch time.Time) time.Duration {
	now := time.Now()     // want `time.Now reads the wall clock in deterministic package`
	_ = time.Since(epoch) // want `time.Since reads the wall clock`
	_ = time.Until(epoch) // want `time.Until reads the wall clock`
	_ = time.Unix(0, 0)   // constructing a time from given numbers is deterministic
	_ = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	return now.Sub(epoch)
}

func globalRand() int {
	n := rand.Intn(10)                 // want `rand.Intn draws from the unseeded global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the unseeded global`
	return n
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	return rng.Float64()                  // methods on the seeded *rand.Rand are allowed
}

func suppressed() time.Time {
	//repchain:wallclock-ok fixture: observational timestamp that never reaches protocol state
	return time.Now()
}

func reasonless() time.Time {
	//repchain:wallclock-ok // want `missing its mandatory reason`
	return time.Now() // want `time.Now reads the wall clock`
}
