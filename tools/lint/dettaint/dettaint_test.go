package dettaint_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/dettaint"
)

func TestDettaint(t *testing.T) {
	analysistest.Run(t, "testdata", dettaint.Analyzer,
		"repchain/internal/scratch",
	)
}
