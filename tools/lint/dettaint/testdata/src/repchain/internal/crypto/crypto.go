// Package crypto is a fixture stub that mirrors the real module's
// consensus-critical API shapes, so the dettaint sink catalogue
// (which matches by import path, receiver, and name) applies to the
// fixture flows exactly as it does to the real code.
package crypto

type PrivateKey []byte

type PublicKey []byte

func (priv PrivateKey) Sign(msg []byte) []byte {
	out := make([]byte, len(msg))
	copy(out, msg)
	return out
}

func (pub PublicKey) Verify(msg, sig []byte) bool {
	return len(msg) > 0 && len(sig) > 0
}

type MerkleBuilder struct {
	leaves [][]byte
}

func (b *MerkleBuilder) Add(leaf []byte) {
	b.leaves = append(b.leaves, leaf)
}

func Sum(data []byte) [4]byte {
	var out [4]byte
	copy(out[:], data)
	return out
}

func MerkleRoot(leaves [][]byte) [4]byte {
	var out [4]byte
	for _, l := range leaves {
		if len(l) > 0 {
			out[0] ^= l[0]
		}
	}
	return out
}
