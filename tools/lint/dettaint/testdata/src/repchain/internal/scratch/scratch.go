// Package scratch exercises dettaint's interprocedural flows: every
// function here either leaks a nondeterminism source into a
// consensus-critical sink (flagged), launders it first (silent), or
// annotates a deliberate flow.
package scratch

import (
	"math/rand"
	"sort"
	"strings"
	"time"

	"repchain/internal/codec"
	"repchain/internal/crypto"
)

// stamp is hop one: the wall clock leaves through a return value.
func stamp() int64 {
	return time.Now().UnixNano()
}

// encode is hop two: the taint rides a parameter into fresh bytes.
func encode(v int64) []byte {
	return []byte{byte(v)}
}

// SignStamped is the two-call-hop acceptance flow: time.Now → stamp →
// encode → signing bytes.
func SignStamped(key crypto.PrivateKey) []byte {
	v := stamp()
	b := encode(v)
	return key.Sign(b) // want `time\.Now`
}

// SignEncoded routes the clock through another package's struct field:
// PutUint64 stores into the encoder's buffer, Bytes returns it.
func SignEncoded(key crypto.PrivateKey) []byte {
	enc := &codec.Encoder{}
	enc.PutUint64(uint64(time.Now().UnixNano()))
	return key.Sign(enc.Bytes()) // want `time\.Now`
}

// keyList carries map-iteration order out through its result.
func keyList(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SignKeysSorted launders the order taint: sorting a permutation of a
// deterministic key set is deterministic. Silent.
func SignKeysSorted(key crypto.PrivateKey, m map[string]int) []byte {
	ks := keyList(m)
	sort.Strings(ks)
	return key.Sign([]byte(strings.Join(ks, ",")))
}

// SignKeysUnsorted signs the permutation itself.
func SignKeysUnsorted(key crypto.PrivateKey, m map[string]int) []byte {
	ks := keyList(m)
	return key.Sign([]byte(strings.Join(ks, ","))) // want `map iteration order`
}

// SignFirstArrival signs whichever channel won the select race.
func SignFirstArrival(key crypto.PrivateKey, a, b chan []byte) []byte {
	var msg []byte
	select {
	case msg = <-a:
	case msg = <-b:
	}
	return key.Sign(msg) // want `select arrival order`
}

// HashNonce feeds unseeded process-local randomness into a hash.
func HashNonce() [4]byte {
	n := rand.Uint64()
	return crypto.Sum([]byte{byte(n)}) // want `math/rand`
}

// AddStampedLeaf reaches a Merkle builder through a method sink.
func AddStampedLeaf(b *crypto.MerkleBuilder) {
	b.Add(encode(stamp())) // want `time\.Now`
}

// SignWithBootTime is a deliberate, reasoned flow: suppressed, silent.
func SignWithBootTime(key crypto.PrivateKey) []byte {
	boot := time.Now().Unix()
	payload := []byte{byte(boot)}
	return key.Sign(payload) //repchain:dettaint-ok fixture: boot-time beacon is advisory and never replayed
}

// SignWithTemp has a reasonless suppression: the annotation itself is
// a finding and suppresses nothing.
func SignWithTemp(key crypto.PrivateKey) []byte {
	t := time.Now().UnixNano()
	return key.Sign([]byte{byte(t)}) //repchain:dettaint-ok // want `missing its mandatory reason` `time\.Now`
}

// SignWithArguedSource annotates the read itself: no origin is seeded,
// so every downstream sink is covered by the one reasoned line. Silent.
func SignWithArguedSource(key crypto.PrivateKey) []byte {
	t := time.Now().UnixNano() //repchain:dettaint-ok fixture: advisory stamp argued harmless at the read
	b := encode(t)
	h := crypto.Sum(b)
	return key.Sign(append(b, h[:]...))
}

// SignHeight is fully deterministic: silent.
func SignHeight(key crypto.PrivateKey, height uint64) []byte {
	return key.Sign([]byte{byte(height)})
}
