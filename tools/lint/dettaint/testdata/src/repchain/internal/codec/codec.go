// Package codec is a fixture stub of the append-only encoder: taint
// stored into the receiver's buffer by one method must resurface from
// Bytes in a different package (the cross-package struct-field flow).
package codec

type Encoder struct {
	buf []byte
}

func (e *Encoder) PutUint64(v uint64) {
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(v>>(8*i)))
	}
}

func (e *Encoder) PutBytes(b []byte) {
	e.buf = append(e.buf, b...)
}

func (e *Encoder) Bytes() []byte {
	return e.buf
}
