// Package dettaint proves, end to end, that no nondeterministic value
// reaches a consensus-critical sink. Sources are wall-clock reads,
// unseeded math/rand, map-iteration and select-arrival order,
// runtime/host probes, environment reads, and pointer formatting;
// sinks are signing bytes, hash and Merkle inputs, durable ledger
// frames, wire payloads, and reputation updates (the catalogue lives
// in tools/analysis/interproc). The flow is tracked through any call
// chain, struct field, or return value by the summary-based
// interprocedural engine, which is what lets this analyzer replace
// detscope's package-allowlist model with a whole-module proof:
// instead of trusting that listed packages never touch a clock, every
// path from a source to a sink is enumerated and must be either
// absent, laundered (sorting strips order-only taint), or annotated
// //repchain:dettaint-ok <reason>.
package dettaint

import (
	"fmt"
	"path/filepath"

	"repchain/tools/analysis"
	"repchain/tools/analysis/interproc"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "dettaint-ok"

// Analyzer reports source-to-sink nondeterminism flows.
var Analyzer = &analysis.Analyzer{
	Name: "dettaint",
	Doc: "forbid nondeterministic values (clocks, unseeded rand, map/select " +
		"order, host probes, %p) from flowing into signing bytes, hash inputs, " +
		"ledger frames, wire payloads, or reputation updates, through any call " +
		"chain; annotate unavoidable flows //repchain:dettaint-ok <reason>",
	Prepare: prepare,
	Run:     run,
}

func prepare(l *analysis.Loader, _ []*analysis.Package) error {
	interproc.Get(l)
	return nil
}

func run(pass *analysis.Pass) error {
	prog := interproc.ByFset(pass.Fset)
	if prog == nil {
		return fmt.Errorf("dettaint: no interprocedural program; the driver must call Prepare first")
	}
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range prog.TaintFindings(pass.Pkg.Path()) {
		opos := pass.Fset.Position(f.Origin.Pos)
		via := ""
		if f.Chain != "" {
			via = " via " + f.Chain
		}
		sup.Reportf(pass, f.Pos,
			"nondeterministic value (%s at %s:%d) reaches %s%s; derive it deterministically, sort it if only order varies, or annotate //repchain:dettaint-ok <reason>",
			f.Origin.Desc, filepath.Base(opos.Filename), opos.Line, f.Sink, via)
	}
	return nil
}
