// Package errwrapcheck enforces the contract of the repo's sentinel
// errors (ErrBacklog, ErrClosed, ErrUnknownProvider): call sites
// compare them with errors.Is — never == / != / switch-case equality,
// which breaks as soon as a layer wraps the error — and propagate them
// with fmt.Errorf("...%w...") so errors.Is keeps working one layer up.
// The facade's translateErr chain (core sentinel → %w-wrapped public
// sentinel) only functions if every hop obeys both halves.
package errwrapcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repchain/tools/analysis"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "errwrapcheck-ok"

// sentinels are the package-level error variables under contract.
var sentinels = map[string]bool{
	"ErrBacklog":         true,
	"ErrClosed":          true,
	"ErrUnknownProvider": true,
}

// Analyzer enforces errors.Is comparison and %w propagation for the
// sentinel errors.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapcheck",
	Doc: "compare ErrBacklog/ErrClosed/ErrUnknownProvider with errors.Is " +
		"(not ==/!=/switch-case) and propagate them with %w so wrapped " +
		"sentinels keep matching",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				name := sentinelName(pass, n.X)
				if name == "" {
					name = sentinelName(pass, n.Y)
				}
				if name != "" {
					sup.Reportf(pass, n.Pos(), "%s compared with %s: a wrapped sentinel no longer compares equal; use errors.Is(err, %s)",
						name, n.Op, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, expr := range cc.List {
						if name := sentinelName(pass, expr); name != "" {
							sup.Reportf(pass, expr.Pos(), "switch-case equality against %s: a wrapped sentinel never matches; use a switch with errors.Is(err, %s) conditions",
								name, name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, sup, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel without a
// %w verb in a constant format string.
func checkErrorf(pass *analysis.Pass, sup *suppress.Set, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name := sentinelName(pass, arg); name != "" {
			sup.Reportf(pass, call.Pos(), "fmt.Errorf formats %s without %%w: callers can no longer match it with errors.Is; wrap it as %%w",
				name)
		}
	}
}

// sentinelName resolves an expression to one of the sentinel error
// variables, returning its name or "".
func sentinelName(pass *analysis.Pass, expr ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || !sentinels[obj.Name()] {
		return ""
	}
	// Package-level variables only: locals that shadow the names are
	// not the shared sentinels.
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}
