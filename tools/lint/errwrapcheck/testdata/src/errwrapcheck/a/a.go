// Package a exercises the errwrapcheck analyzer.
package a

import (
	"errors"
	"fmt"
)

var (
	ErrBacklog         = errors.New("backlog")
	ErrClosed          = errors.New("closed")
	ErrUnknownProvider = errors.New("unknown provider")
	ErrOther           = errors.New("other, not under contract")
)

func compare(err error) bool {
	if err == ErrBacklog { // want `ErrBacklog compared with ==`
		return true
	}
	if ErrClosed != err { // want `ErrClosed compared with !=`
		return false
	}
	if err == ErrOther { // not a sentinel under contract
		return true
	}
	return errors.Is(err, ErrUnknownProvider) // the blessed comparison
}

func switchCase(err error) string {
	switch err {
	case ErrBacklog: // want `switch-case equality against ErrBacklog`
		return "backlog"
	case ErrOther:
		return "other"
	default:
		return "unknown"
	}
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("round failed: %v: %w", ErrClosed, err) // %w present, fine
	}
	return fmt.Errorf("submit: %v", ErrBacklog) // want `fmt.Errorf formats ErrBacklog without %w`
}

func wrapSomethingElse(err error) error {
	return fmt.Errorf("no sentinel involved: %v", err)
}

func shadowed(err error) bool {
	ErrBacklog := errors.New("a local that merely shares the name")
	return err == ErrBacklog // locals are not the shared sentinel
}

func suppressed(err error) bool {
	//repchain:errwrapcheck-ok fixture: identity check against the canonical instance is intended here
	return err == ErrClosed
}

func reasonless(err error) bool {
	//repchain:errwrapcheck-ok // want `missing its mandatory reason`
	return err == ErrClosed // want `ErrClosed compared with ==`
}
