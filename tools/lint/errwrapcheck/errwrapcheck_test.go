package errwrapcheck_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/errwrapcheck"
)

func TestErrwrapcheck(t *testing.T) {
	analysistest.Run(t, "testdata", errwrapcheck.Analyzer, "errwrapcheck/a")
}
