// Package suppress parses the repchain lint suppression annotations.
//
// Grammar (one annotation per comment, no space after //):
//
//	//repchain:<directive> <reason>
//
// An annotation applies to the source line it sits on (trailing
// comment) and to the line immediately below it (own-line comment).
// The reason is mandatory: a reasonless annotation suppresses nothing
// and is itself reported as a finding, so every silenced diagnostic
// carries a written justification next to the code it excuses. A
// " // " sequence inside the comment starts a secondary comment that
// is not part of the reason.
package suppress

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repchain/tools/analysis"
)

// Prefix starts every repchain lint annotation.
const Prefix = "//repchain:"

// Annotation is one parsed suppression comment.
type Annotation struct {
	Pos       token.Pos
	Directive string
	Reason    string
}

// Set holds the annotations of one package for one directive.
type Set struct {
	fset      *token.FileSet
	directive string
	byLine    map[string]map[int]Annotation
}

// Collect gathers every annotation with the given directive from the
// package's comments.
func Collect(fset *token.FileSet, files []*ast.File, directive string) *Set {
	s := &Set{fset: fset, directive: directive, byLine: map[string]map[int]Annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, Prefix)
				dir, reason, _ := strings.Cut(rest, " ")
				if dir != directive {
					continue
				}
				reason = strings.TrimSpace(reason)
				if strings.HasPrefix(reason, "//") {
					reason = ""
				} else if i := strings.Index(reason, " // "); i >= 0 {
					reason = reason[:i]
				}
				posn := fset.Position(c.Pos())
				if s.byLine[posn.Filename] == nil {
					s.byLine[posn.Filename] = map[int]Annotation{}
				}
				s.byLine[posn.Filename][posn.Line] = Annotation{
					Pos:       c.Pos(),
					Directive: dir,
					Reason:    strings.TrimSpace(reason),
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a finding at pos is covered by an
// annotation that carries a reason.
func (s *Set) Suppressed(pos token.Pos) bool {
	posn := s.fset.Position(pos)
	lines := s.byLine[posn.Filename]
	if a, ok := lines[posn.Line]; ok && a.Reason != "" {
		return true
	}
	if a, ok := lines[posn.Line-1]; ok && a.Reason != "" {
		return true
	}
	return false
}

// Reportf reports a formatted diagnostic at pos, marking it suppressed
// when a reasoned annotation covers the line. Suppressed diagnostics
// reach the driver (the -json triage report lists them) but do not
// fail the lint gate.
func (s *Set) Reportf(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	pass.Report(analysis.Diagnostic{
		Pos:        pos,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: s.Suppressed(pos),
	})
}

// ReportMissingReasons emits one diagnostic per reasonless annotation,
// so `//repchain:x-ok` without a justification fails the lint gate.
func (s *Set) ReportMissingReasons(pass *analysis.Pass) {
	for _, lines := range s.byLine {
		for _, a := range lines {
			if a.Reason == "" {
				pass.Reportf(a.Pos, "suppression //repchain:%s is missing its mandatory reason", a.Directive)
			}
		}
	}
}
