// Package detscope names the packages whose code must be replica-
// deterministic: every governor replays the same inputs and must reach
// byte-identical blocks, reputation vectors, and stake state
// (DESIGN.md §4a/§4b/§4d), so map-iteration order and wall-clock reads
// are forbidden there by the detrange and wallclock analyzers.
package detscope

import "strings"

// packages are the import-path leaves under repchain/internal whose
// code runs identically on every replica.
var packages = []string{
	"core",
	"consensus",
	"codec",
	"reputation",
	"rwm",
	"mempool",
	"ledger",
	"shard",
}

// Deterministic reports whether the import path belongs to the
// deterministic replica core (including subpackages).
func Deterministic(path string) bool {
	for _, p := range packages {
		root := "repchain/internal/" + p
		if path == root || strings.HasPrefix(path, root+"/") {
			return true
		}
	}
	return false
}
