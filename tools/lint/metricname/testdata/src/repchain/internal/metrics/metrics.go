// Package metrics is a fixture stub of repchain/internal/metrics: the
// metricname analyzer matches registration methods by this import
// path, so the stub only needs the Registry surface, not the real
// implementations.
package metrics

type (
	Registry     struct{}
	Counter      struct{}
	Gauge        struct{}
	Series       struct{}
	Histogram    struct{}
	CounterVec   struct{}
	HistogramVec struct{}
)

func (r *Registry) Counter(name string) *Counter { return nil }
func (r *Registry) Gauge(name string) *Gauge     { return nil }
func (r *Registry) Series(name string) *Series   { return nil }
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return nil
}
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	return nil
}
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	return nil
}
