// Package a exercises the metricname analyzer against a test
// catalogue containing engine.rounds_total and mempool.depth.
package a

import "repchain/internal/metrics"

const depthName = "mempool.depth"

func register(reg *metrics.Registry, dynamic string) {
	reg.Counter("engine.rounds_total")                 // documented
	reg.Gauge(depthName)                               // constants resolve at compile time
	reg.Counter("engine.rounds_totol")                 // want `metric "engine.rounds_totol" is not listed in the test catalogue \(documented in that family: engine.rounds_total\)`
	reg.Histogram("mempool.undocumented_seconds", nil) // want `metric "mempool.undocumented_seconds" is not listed`
	reg.Gauge(dynamic)                                 // want `metric name passed to metrics.Gauge must be a constant string`
	reg.CounterVec("totally.unknown", "label")         //repchain:metricname-ok fixture: experimental family pending a catalogue entry
	//repchain:metricname-ok // want `missing its mandatory reason`
	reg.Series("still.unknown") // want `metric "still.unknown" is not listed`
}

// lookalike has a Counter method outside the metrics package; its
// names are not gated.
type lookalike struct{}

func (lookalike) Counter(name string) int { return 0 }

func unrelated() {
	var l lookalike
	l.Counter("whatever.name")
}
