// Package metricname promotes the metrics_catalogue_test.go drift
// check to compile time: every metric name passed to a
// repchain/internal/metrics registration method must be a constant
// string that appears in the DESIGN.md §4c catalogue. Both this
// analyzer and the runtime drift test parse the catalogue through the
// same package (repchain/internal/designdoc), so the two gates cannot
// disagree about what the catalogue says.
package metricname

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"repchain/tools/analysis"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "metricname-ok"

// metricsPkg is the import path whose registration methods are gated.
const metricsPkg = "repchain/internal/metrics"

// registrars are the Registry methods whose first argument is a
// metric name.
var registrars = map[string]bool{
	"Counter": true, "Gauge": true, "Series": true,
	"Histogram": true, "CounterVec": true, "HistogramVec": true,
}

// New builds the analyzer around a catalogue of documented metric
// names; source names where the catalogue came from for diagnostics
// (e.g. "DESIGN.md §4c").
func New(catalogue map[string]bool, source string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "metricname",
		Doc: "every metric name passed to metrics.Registry registration " +
			"methods must be a constant string listed in the " + source +
			" metric catalogue",
		Run: func(pass *analysis.Pass) error {
			return run(pass, catalogue, source)
		},
	}
}

func run(pass *analysis.Pass, catalogue map[string]bool, source string) error {
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkg || !registrars[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil { // only Registry methods register names
				return true
			}
			suppressed := sup.Suppressed(call.Pos())
			report := func(format string, args ...any) {
				pass.Report(analysis.Diagnostic{
					Pos:        call.Args[0].Pos(),
					Message:    fmt.Sprintf(format, args...),
					Suppressed: suppressed,
				})
			}
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				report("metric name passed to metrics.%s must be a constant string so the %s catalogue can be checked at compile time",
					fn.Name(), source)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !catalogue[name] {
				report("metric %q is not listed in the %s catalogue%s; document it there or annotate //repchain:metricname-ok <reason>",
					name, source, nearMiss(name, catalogue))
			}
			return true
		})
	}
	return nil
}

// nearMiss suggests a documented name sharing the flagged name's
// prefix family, to catch typos like mempool.dept.
func nearMiss(name string, catalogue map[string]bool) string {
	family, _, ok := strings.Cut(name, ".")
	if !ok {
		return ""
	}
	var close []string
	for doc := range catalogue {
		if strings.HasPrefix(doc, family+".") {
			close = append(close, doc)
		}
	}
	sort.Strings(close)
	if len(close) == 0 {
		return ""
	}
	return " (documented in that family: " + strings.Join(close, ", ") + ")"
}
