package metricname_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/metricname"
)

func TestMetricname(t *testing.T) {
	catalogue := map[string]bool{
		"engine.rounds_total": true,
		"mempool.depth":       true,
	}
	analysistest.Run(t, "testdata", metricname.New(catalogue, "test"), "metricname/a")
}
