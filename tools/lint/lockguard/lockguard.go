// Package lockguard checks that struct fields documented as
// `// guarded by <mu>` are only touched inside functions that visibly
// acquire that mutex. The check is lexical, not a happens-before
// proof: a function passes if its body (closures included) contains a
// <mu>.Lock() or <mu>.RLock() call, if its name ends in "Locked" (the
// repo convention for callers-hold-the-lock helpers), or if the site
// carries //repchain:lockguard-ok <reason> (e.g. constructors that
// initialise fields before the value is shared).
package lockguard

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repchain/tools/analysis"
	"repchain/tools/lint/internal/suppress"
)

// Directive is the suppression annotation this analyzer honours.
const Directive = "lockguard-ok"

// Analyzer enforces `// guarded by mu` field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by mu` may only be accessed in " +
		"functions that lock mu, in *Locked helpers, or at sites " +
		"annotated //repchain:lockguard-ok <reason>",
	Run: run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	sup := suppress.Collect(pass.Fset, pass.Files, Directive)
	sup.ReportMissingReasons(pass)
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && fd.Body == nil {
				continue
			}
			var (
				locked       map[string]bool
				funcOK       bool
				funcSuppress bool
				body         ast.Node = decl
				funcName     string
			)
			if isFunc {
				locked = lockedMutexes(fd.Body)
				funcName = fd.Name.Name
				funcOK = strings.HasSuffix(funcName, "Locked")
				funcSuppress = sup.Suppressed(fd.Pos())
				body = fd.Body
			}
			ast.Inspect(body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				mu, ok := guarded[selection.Obj()]
				if !ok {
					return true
				}
				if funcOK || locked[mu] {
					return true
				}
				where := "at package scope"
				if isFunc {
					where = "in " + funcName
				}
				pass.Report(analysis.Diagnostic{
					Pos: sel.Pos(),
					Message: fmt.Sprintf("field %s is guarded by %s but accessed %s without a visible %s.Lock/RLock; lock it, rename the helper *Locked, or annotate //repchain:lockguard-ok <reason>",
						selection.Obj().Name(), mu, where, mu),
					Suppressed: funcSuppress || sup.Suppressed(sel.Pos()),
				})
				return true
			})
		}
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name of
// its guarding mutex.
func collectGuardedFields(pass *analysis.Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardName extracts the mutex name from a field's doc or trailing
// comment, or "" when the field is unannotated.
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedMutexes returns the names of mutexes on which the body calls
// Lock or RLock, e.g. {"mu"} for s.mu.Lock().
func lockedMutexes(body ast.Node) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			locked[x.Name] = true
		case *ast.SelectorExpr:
			locked[x.Sel.Name] = true
		}
		return true
	})
	return locked
}
