package lockguard_test

import (
	"testing"

	"repchain/tools/analysis/analysistest"
	"repchain/tools/lint/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lockguard/a")
}
