// Package a exercises the lockguard analyzer.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // unguarded scratch, free to touch
}

func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) Bad() int {
	return c.n // want `field n is guarded by mu but accessed in Bad without a visible mu.Lock/RLock`
}

func (c *counter) bumpLocked() { c.n++ } // the *Locked suffix promises the caller holds mu

func (c *counter) Unguarded() int { return c.m }

//repchain:lockguard-ok construction helper: the counter is not yet shared
func newCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

func (c *counter) SuppressedSite() int {
	return c.n //repchain:lockguard-ok fixture: caller documents an external happens-before edge
}

func (c *counter) Reasonless() int {
	//repchain:lockguard-ok // want `missing its mandatory reason`
	return c.n // want `field n is guarded by mu`
}

type rwBox struct {
	mu sync.RWMutex
	v  string // guarded by mu
}

func (b *rwBox) Read() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *rwBox) closureUnderLock() func() string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	// Lexical check: the closure sits in a body that locks mu.
	return func() string { return b.v }
}
