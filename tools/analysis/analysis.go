// Package analysis is a minimal, stdlib-only re-implementation of the
// golang.org/x/tools/go/analysis surface used by the repchain lint
// suite. The container this repository builds in has no module cache
// and no network, so the real framework cannot be fetched; analyzers
// are written against this drop-in subset (Analyzer, Pass, Reportf)
// and port to x/tools by swapping the import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// annotations (//repchain:<name>-ok).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Prepare, when non-nil, runs once before any per-package Run,
	// with every package the driver is about to analyze. Analyzers
	// that need a whole-module view (the interprocedural passes)
	// build their shared program state here; per-package analyzers
	// leave it nil.
	Prepare func(l *Loader, pkgs []*Package) error
	// Run applies the check to a single type-checked package.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position. Suppressed findings
// are carried through to the driver (they appear in the -json triage
// report) but do not fail the lint gate and are invisible to the
// analysistest `// want` harness.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Suppressed bool
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
