// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under a testdata/src root and checks its diagnostics
// against `// want "regexp"` comments, mirroring the expectation
// syntax of golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repchain/tools/analysis"
)

var wantRe = regexp.MustCompile("(?:^|\\s)want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package below filepath.Join(testdata, "src"),
// applies the analyzer, and fails the test on any mismatch between
// reported diagnostics and want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader(analysis.LoadConfig{SrcRoot: filepath.Join(testdata, "src")})
	// Load every fixture package up front so Prepare (the
	// interprocedural analyzers' whole-program hook) sees the same
	// universe the driver would: all analyzed packages plus their
	// fixture imports.
	pkgs := make([]*analysis.Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := loader.LoadTestPackage(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if a.Prepare != nil {
		if err := a.Prepare(loader, loader.Loaded()); err != nil {
			t.Fatalf("prepare %s: %v", a.Name, err)
		}
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzer(a, loader, pkg)
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		// Suppressed diagnostics are driver-report-only; the fixture
		// expectations describe what fails the gate.
		kept := diags[:0]
		for _, d := range diags {
			if !d.Suppressed {
				kept = append(kept, d)
			}
		}
		checkPackage(t, loader.Fset, a, pkg, kept)
	}
}

func checkPackage(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic from %s: %s", key, a.Name, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, exp.re)
			}
		}
	}
}
