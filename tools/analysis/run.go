package analysis

import (
	"sort"
)

// RunAnalyzer applies one analyzer to one loaded package and returns
// its diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, l *Loader, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
