package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig controls how a Loader resolves and type-checks packages.
type LoadConfig struct {
	// Dir is where `go list` runs — the module root whose packages are
	// analyzed. Defaults to ".".
	Dir string
	// SrcRoot, when non-empty, is a GOPATH-style source root (the
	// analysistest testdata/src directory) consulted before the module:
	// an import path that exists as a directory under SrcRoot is parsed
	// and type-checked from source there. Everything else must be a
	// standard-library import.
	SrcRoot string
}

// Loader loads packages the way `go vet` does: the analyzed packages
// themselves are parsed from source (comments included, so suppression
// annotations survive), while every dependency is imported from the
// compiled export data that `go list -export` produces. No network and
// no third-party code is involved; the go command resolves everything
// from GOROOT and the local module.
type Loader struct {
	cfg     LoadConfig
	Fset    *token.FileSet
	exports map[string]string // import path → export-data file
	gcimp   types.ImporterFrom
	pkgs    map[string]*Package // source-loaded packages, by import path
	loading map[string]bool     // cycle guard for SrcRoot packages
}

// NewLoader returns a Loader for the given configuration.
func NewLoader(cfg LoadConfig) *Loader {
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	l := &Loader{
		cfg:     cfg,
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.gcimp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
	return l
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for the given patterns and
// records every package's export-data file.
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.cfg.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		l.exports[p.ImportPath] = p.Export
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Targets loads the packages matched by the go-list patterns (e.g.
// "./...") from source, with all dependencies resolved through export
// data. Returned packages are sorted by import path.
func (l *Loader) Targets(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.loadSource(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		targets = append(targets, pkg)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].Path < targets[j].Path })
	return targets, nil
}

// Loaded returns every package this loader has parsed and type-checked
// from source (analysis targets and fixture imports alike), sorted by
// import path. This is the source-available universe the
// interprocedural engine builds its callgraph over; dependencies
// resolved from export data have no syntax and are modeled, not
// analyzed.
func (l *Loader) Loaded() []*Package {
	pkgs := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// LoadTestPackage loads an analysistest fixture package (and,
// recursively, any fixture packages it imports) from cfg.SrcRoot.
// Standard-library imports reached from fixtures are resolved through
// one `go list -export` call per LoadTestPackage.
func (l *Loader) LoadTestPackage(path string) (*Package, error) {
	if l.cfg.SrcRoot == "" {
		return nil, fmt.Errorf("LoadTestPackage %q: no SrcRoot configured", path)
	}
	std := map[string]bool{}
	if err := l.collectStdImports(path, std, map[string]bool{}); err != nil {
		return nil, err
	}
	if len(std) > 0 {
		var missing []string
		for p := range std {
			if _, ok := l.exports[p]; !ok {
				missing = append(missing, p)
			}
		}
		sort.Strings(missing)
		if len(missing) > 0 {
			if _, err := l.goList(missing); err != nil {
				return nil, err
			}
		}
	}
	return l.loadFixture(path)
}

// collectStdImports walks the fixture import graph under SrcRoot and
// gathers every standard-library import path it escapes to.
func (l *Loader) collectStdImports(path string, std, seen map[string]bool) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	dir := filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(path))
	files, err := fixtureFiles(dir)
	if err != nil {
		return fmt.Errorf("fixture %s: %w", path, err)
	}
	for _, f := range files {
		parsed, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, f), nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range parsed.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if st, err := os.Stat(filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(ip))); err == nil && st.IsDir() {
				if err := l.collectStdImports(ip, std, seen); err != nil {
					return err
				}
			} else if ip != "unsafe" {
				std[ip] = true
			}
		}
	}
	return nil
}

// loadFixture parses and type-checks one SrcRoot package, recursing
// into fixture imports.
func (l *Loader) loadFixture(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through fixture %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(path))
	files, err := fixtureFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", path, err)
	}
	return l.loadSource(path, dir, files)
}

// fixtureFiles lists the .go file names of a fixture directory.
func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// loadSource parses the given files and type-checks them as package
// path, resolving imports via fixtures (if configured) or export data.
func (l *Loader) loadSource(path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, fn)
		}
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer:    &fixtureImporter{l},
		FakeImportC: true,
		Error:       func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		var sb strings.Builder
		for _, e := range terrs {
			fmt.Fprintf(&sb, "\n\t%v", e)
		}
		return nil, fmt.Errorf("type-checking %s:%s", path, sb.String())
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// fixtureImporter routes imports to SrcRoot fixtures when they exist
// there, and to gc export data otherwise.
type fixtureImporter struct{ l *Loader }

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := fi.l
	if l.cfg.SrcRoot != "" && path != "unsafe" {
		if st, err := os.Stat(filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
			pkg, err := l.loadFixture(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.gcimp.ImportFrom(path, srcDir, mode)
}
