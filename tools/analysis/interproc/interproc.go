// Package interproc is the summary-based interprocedural dataflow
// engine under the repchain-lint dettaint, goroleak, and atomicmix
// analyzers (DESIGN.md §4j).
//
// The engine builds a whole-module view over every package the loader
// parsed from source: a function index keyed by path-qualified names
// (stable across the source-checked and export-data type universes), a
// static callgraph with class-hierarchy resolution for interface
// method calls, and per-function taint summaries computed bottom-up
// over the callgraph's strongly connected components. Summaries are
// memoized on the Program, so analyzing the second package of a module
// reuses every summary the first package's analysis forced.
//
// The taint lattice, source/sink catalogue, and the precision
// trade-offs (variable-granular container taint, package-level-state
// field taint, no per-object heap model) are documented in
// DESIGN.md §4j.
package interproc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"repchain/tools/analysis"
)

// FuncInfo is one universe function: a function or method whose body
// was parsed from source and can therefore be summarized.
type FuncInfo struct {
	Key  string // path-qualified name, e.g. repchain/internal/codec.Encoder.PutUvarint
	Name string // display name for chains, e.g. (*Encoder).PutUvarint
	Pkg  *analysis.Package
	Decl *ast.FuncDecl
	Sig  *types.Signature
	// Params lists the value parameters with the receiver (when
	// present) at index 0, matching the call-site argument vector the
	// summaries are expressed against.
	Params []types.Object

	// callees are the static out-edges (universe keys only).
	callees []string
	// sccIndex is the function's component in bottom-up order.
	sccIndex int
}

// Program is the engine's whole-module state: the function index,
// callgraph condensation, memoized summaries, and the module-wide
// atomic-field census.
type Program struct {
	Fset *token.FileSet
	pkgs []*analysis.Package

	universe map[string]bool      // package paths loaded from source
	fns      map[string]*FuncInfo // function key → info
	fnOrder  []string             // sorted keys, for deterministic walks
	// methods indexes concrete universe methods by name, for
	// interface-call resolution (class-hierarchy style: a dynamic call
	// x.M(...) with x of interface type merges the summaries of every
	// universe method M with a compatible signature shape).
	methods map[string][]*FuncInfo

	sccs [][]*FuncInfo // bottom-up (callee-first) order

	summaries map[string]*Summary
	// fieldTaint records nondeterministic writes into package-level
	// state: field key → origin that reached it. Variable-rooted field
	// writes stay frame-local (see taint.go).
	fieldTaint map[string]*Origin

	// origins interns one Origin per (kind, position).
	origins map[string]*Origin

	// atomicFields maps the key of every struct field whose address is
	// passed to a sync/atomic function to one such call site.
	atomicFields map[string]token.Pos
	// atomicUses marks the exact selector nodes that appear inside
	// sync/atomic call arguments, so the census does not flag them.
	atomicUses map[*ast.SelectorExpr]bool

	// computations counts summary (re)computations, exposed so tests
	// can assert memoization across packages.
	computations int

	// orderedIrrelevant marks file:line positions carrying a reasoned
	// //repchain:ordered-irrelevant annotation; map ranges there are
	// already argued commutative for detrange, so dettaint does not
	// seed order taint from them.
	orderedIrrelevant map[string]bool

	// sourceArgued marks file:line positions carrying a reasoned
	// //repchain:dettaint-ok annotation. A source call on such a line
	// seeds no origin: the flow is argued harmless once, at the read,
	// instead of at every sink its container reaches.
	sourceArgued map[string]bool
}

var (
	progMu    sync.Mutex
	progCache map[*analysis.Loader]*Program
	fsetCache map[*token.FileSet]*Program
)

// Get returns the memoized Program for a loader, building it on first
// use from every package the loader has parsed from source. The three
// interprocedural analyzers share one Program per driver run.
func Get(l *analysis.Loader) *Program {
	progMu.Lock()
	defer progMu.Unlock()
	if progCache == nil {
		progCache = map[*analysis.Loader]*Program{}
	}
	if p, ok := progCache[l]; ok {
		return p
	}
	p := build(l.Fset, l.Loaded())
	progCache[l] = p
	if fsetCache == nil {
		fsetCache = map[*token.FileSet]*Program{}
	}
	fsetCache[l.Fset] = p
	return p
}

// ByFset returns the Program built over a loader with this file set,
// or nil if no analyzer Prepare has built one. A Pass carries the
// file set but not the loader, so the per-package Run hooks of the
// interprocedural analyzers resolve their shared state through it.
func ByFset(fset *token.FileSet) *Program {
	progMu.Lock()
	defer progMu.Unlock()
	return fsetCache[fset]
}

// Computations reports how many per-function summary computations the
// engine has performed; a reporting pass over an already-summarized
// package must not grow it.
func (p *Program) Computations() int { return p.computations }

// build constructs the index, callgraph, SCC order, and summaries.
func build(fset *token.FileSet, pkgs []*analysis.Package) *Program {
	p := &Program{
		Fset:              fset,
		pkgs:              pkgs,
		universe:          map[string]bool{},
		fns:               map[string]*FuncInfo{},
		methods:           map[string][]*FuncInfo{},
		summaries:         map[string]*Summary{},
		fieldTaint:        map[string]*Origin{},
		origins:           map[string]*Origin{},
		atomicFields:      map[string]token.Pos{},
		atomicUses:        map[*ast.SelectorExpr]bool{},
		orderedIrrelevant: map[string]bool{},
		sourceArgued:      map[string]bool{},
	}
	for _, pkg := range pkgs {
		p.universe[pkg.Path] = true
	}
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	sort.Strings(p.fnOrder)
	for _, key := range p.fnOrder {
		p.fns[key].callees = p.staticCallees(p.fns[key])
	}
	p.condense()
	p.computeSummaries()
	p.censusAtomics()
	return p
}

// indexPackage records the package's function declarations and its
// reasoned ordered-irrelevant annotation lines.
func (p *Program) indexPackage(pkg *analysis.Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const pfx = "//repchain:ordered-irrelevant "
				if strings.HasPrefix(c.Text, pfx) && strings.TrimSpace(strings.TrimPrefix(c.Text, pfx)) != "" {
					posn := p.Fset.Position(c.Pos())
					p.orderedIrrelevant[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)] = true
				}
				const srcPfx = "//repchain:dettaint-ok "
				if strings.HasPrefix(c.Text, srcPfx) && strings.TrimSpace(strings.TrimPrefix(c.Text, srcPfx)) != "" {
					posn := p.Fset.Position(c.Pos())
					p.sourceArgued[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				continue
			}
			fi := &FuncInfo{
				Key:  FuncKey(obj),
				Name: displayName(obj),
				Pkg:  pkg,
				Decl: fd,
				Sig:  sig,
			}
			if recv := sig.Recv(); recv != nil {
				fi.Params = append(fi.Params, recv)
			}
			for i := 0; i < sig.Params().Len(); i++ {
				fi.Params = append(fi.Params, sig.Params().At(i))
			}
			if _, dup := p.fns[fi.Key]; dup {
				continue // identical key (should not happen); keep first
			}
			p.fns[fi.Key] = fi
			p.fnOrder = append(p.fnOrder, fi.Key)
			if sig.Recv() != nil {
				p.methods[obj.Name()] = append(p.methods[obj.Name()], fi)
			}
		}
	}
}

// FuncKey names a function or method so that the source-checked and
// export-data views of the same declaration agree: package path, then
// the named receiver type (pointer stripped), then the function name.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		key += recvTypeName(sig.Recv().Type()) + "."
	}
	return key + fn.Name()
}

// recvTypeName names a receiver type: the Named identifier beneath any
// pointer, or the raw type string as a fallback.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		return tt.Obj().Name()
	case *types.Interface:
		return "interface"
	}
	return t.String()
}

// displayName renders a function for chain strings.
func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name := recvTypeName(sig.Recv().Type())
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			name = "*" + name
		}
		return "(" + name + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeInfos resolves a call expression to the universe functions it
// may invoke: the static target for direct calls, or every
// shape-compatible universe method for a call through an interface.
func (p *Program) calleeInfos(pkg *analysis.Package, call *ast.CallExpr) []*FuncInfo {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		var out []*FuncInfo
		for _, m := range p.methods[fn.Name()] {
			if m.Sig.Params().Len() == sig.Params().Len() && m.Sig.Results().Len() == sig.Results().Len() {
				out = append(out, m)
			}
		}
		return out
	}
	if fi, ok := p.fns[FuncKey(fn)]; ok {
		return []*FuncInfo{fi}
	}
	return nil
}

// calleeFunc resolves the *types.Func a call expression names, or nil
// for builtins, conversions, and calls through function values.
func calleeFunc(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := pkg.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// staticCallees gathers the universe keys a function's body may call,
// interface dispatch included.
func (p *Program) staticCallees(fi *FuncInfo) []string {
	seen := map[string]bool{}
	var keys []string
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range p.calleeInfos(fi.Pkg, call) {
			if !seen[callee.Key] {
				seen[callee.Key] = true
				keys = append(keys, callee.Key)
			}
		}
		return true
	})
	sort.Strings(keys)
	return keys
}

// condense runs Tarjan's SCC algorithm over the callgraph and stores
// the components in bottom-up (callee-first) order, so summary
// computation visits callees before callers and iterates only within
// mutually recursive components.
func (p *Program) condense() {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0

	type frame struct {
		key string
		ci  int // next callee index to visit
	}
	for _, root := range p.fnOrder {
		if _, visited := index[root]; visited {
			continue
		}
		// Iterative Tarjan: recursion depth over a large module could
		// otherwise exceed the goroutine stack comfort zone.
		work := []frame{{key: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			fi := p.fns[fr.key]
			advanced := false
			for fr.ci < len(fi.callees) {
				callee := fi.callees[fr.ci]
				fr.ci++
				if _, ok := index[callee]; !ok {
					index[callee] = next
					low[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					work = append(work, frame{key: callee})
					advanced = true
					break
				} else if onStack[callee] && low[fr.key] > index[callee] {
					low[fr.key] = index[callee]
				}
			}
			if advanced {
				continue
			}
			if low[fr.key] == index[fr.key] {
				var scc []*FuncInfo
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[k] = false
					fi := p.fns[k]
					fi.sccIndex = len(p.sccs)
					scc = append(scc, fi)
					if k == fr.key {
						break
					}
				}
				sort.Slice(scc, func(i, j int) bool { return scc[i].Key < scc[j].Key })
				p.sccs = append(p.sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].key
				if low[parent] > low[fr.key] {
					low[parent] = low[fr.key]
				}
			}
		}
	}
}

// computeSummaries runs the bottom-up fixpoint: each SCC iterates
// until its members' summaries stabilize, and the whole schedule
// repeats while nondeterministic writes into package-level state keep
// surfacing new field taint (that information flows against the
// callee-first order).
func (p *Program) computeSummaries() {
	const maxOuter = 10
	for outer := 0; outer < maxOuter; outer++ {
		changed := false
		fieldsBefore := len(p.fieldTaint)
		for _, scc := range p.sccs {
			const maxInner = 10
			for inner := 0; inner < maxInner; inner++ {
				sccChanged := false
				for _, fi := range scc {
					sum := p.analyzeFunc(fi, nil)
					p.computations++
					old := p.summaries[fi.Key]
					if old == nil || old.fingerprint() != sum.fingerprint() {
						p.summaries[fi.Key] = sum
						sccChanged = true
						changed = true
					}
				}
				if !sccChanged {
					break
				}
			}
		}
		if !changed && len(p.fieldTaint) == fieldsBefore {
			return
		}
	}
}

// summary returns the memoized summary for a universe key, or nil.
func (p *Program) summary(key string) *Summary { return p.summaries[key] }

// origin interns one Origin per (description, position) pair.
func (p *Program) origin(desc string, pos token.Pos, order bool) *Origin {
	key := fmt.Sprintf("%s@%d", desc, pos)
	if o, ok := p.origins[key]; ok {
		return o
	}
	o := &Origin{Desc: desc, Pos: pos, Order: order}
	p.origins[key] = o
	return o
}
