// Package ipa is an engine fixture: mutually recursive value flow and
// an interface whose implementations differ in determinism.
package ipa

import "time"

// Ping and Pong are mutually recursive; the value parameter must
// survive the SCC fixpoint into both summaries.
func Ping(n int, v int64) int64 {
	if n == 0 {
		return v
	}
	return Pong(n-1, v)
}

func Pong(n int, v int64) int64 {
	if n == 0 {
		return v + 1
	}
	return Ping(n-1, v)
}

type Source interface {
	Value() int64
}

type Clock struct{}

func (Clock) Value() int64 { return time.Now().UnixNano() }

type Fixed struct{}

func (Fixed) Value() int64 { return 42 }

// Use dispatches through the interface: the engine must merge every
// compatible implementation, so the Clock origin surfaces here.
func Use(s Source) int64 { return s.Value() }
