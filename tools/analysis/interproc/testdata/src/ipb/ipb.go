// Package ipb rides on ipa's memoized summaries from another package.
package ipb

import "ipa"

func Relay(v int64) int64 { return ipa.Ping(3, v) }

func Sample(s ipa.Source) int64 { return ipa.Use(s) }
