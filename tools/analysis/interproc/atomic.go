package interproc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Atomic/plain mixing detection. The census collects, module-wide,
// every struct field whose address is passed to a sync/atomic
// function; any plain (non-atomic) selection of such a field anywhere
// in the module is a finding — a mutex around the plain access does
// not restore the ordering guarantees the atomic side assumes, so the
// mutex case is flagged identically.

// censusAtomics records the atomic fields of the whole universe and
// the selector nodes that legitimately appear inside sync/atomic call
// arguments.
func (p *Program) censusAtomics() {
	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection, ok := pkg.Info.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					key := fieldKey(selection)
					if _, seen := p.atomicFields[key]; !seen {
						p.atomicFields[key] = call.Pos()
					}
					p.atomicUses[sel] = true
				}
				return true
			})
		}
	}
}

// AtomicFinding is one plain access to a field that is elsewhere
// accessed through sync/atomic.
type AtomicFinding struct {
	Pos       token.Pos // the plain selection
	Field     string    // short Type.field name for the message
	AtomicPos token.Pos // one sync/atomic call site on the same field
}

// AtomicFindings reports the plain accesses of one package to fields
// in the module-wide atomic census.
func (p *Program) AtomicFindings(pkgPath string) []AtomicFinding {
	var out []AtomicFinding
	for _, pkg := range p.pkgs {
		if pkg.Path != pkgPath {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || p.atomicUses[sel] {
					return true
				}
				selection, ok := pkg.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				key := fieldKey(selection)
				if apos, isAtomic := p.atomicFields[key]; isAtomic {
					out = append(out, AtomicFinding{Pos: sel.Sel.Pos(), Field: shortFieldName(key), AtomicPos: apos})
				}
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// shortFieldName trims the package path off a field key, leaving
// Type.field.
func shortFieldName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	if i := strings.Index(key, "."); i >= 0 {
		key = key[i+1:]
	}
	return key
}
