package interproc

import (
	"strings"
	"testing"

	"repchain/tools/analysis"
)

func loadFixture(t *testing.T, paths ...string) (*analysis.Loader, *Program) {
	t.Helper()
	l := analysis.NewLoader(analysis.LoadConfig{SrcRoot: "testdata/src"})
	for _, path := range paths {
		if _, err := l.LoadTestPackage(path); err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
	}
	return l, Get(l)
}

// TestSummaryConvergenceOnMutualRecursion checks that the SCC fixpoint
// stabilizes on a mutually recursive pair and that the value parameter
// flows through the cycle into both results.
func TestSummaryConvergenceOnMutualRecursion(t *testing.T) {
	_, p := loadFixture(t, "ipa")
	for _, key := range []string{"ipa.Ping", "ipa.Pong"} {
		sum := p.summary(key)
		if sum == nil {
			t.Fatalf("no summary for %s", key)
		}
		if len(sum.Results) != 1 {
			t.Fatalf("%s: want 1 result, got %d", key, len(sum.Results))
		}
		if !sum.Results[0].params["1"] {
			t.Errorf("%s: result does not carry param 1 (v) through the recursion", key)
		}
		if len(sum.Results[0].origins) != 0 {
			t.Errorf("%s: recursion invented origins: %v", key, sum.Results[0].originsSorted())
		}
		// The fixpoint must be genuinely stable: recomputing against the
		// memoized summaries reproduces the same fingerprint.
		again := p.analyzeFunc(p.fns[key], nil)
		if got, want := again.fingerprint(), sum.fingerprint(); got != want {
			t.Errorf("%s: summary not converged:\n got %s\nwant %s", key, got, want)
		}
	}
}

// TestTaintThroughInterfaceMethod checks class-hierarchy resolution:
// a call through ipa.Source merges every compatible implementation, so
// Clock's wall-clock origin reaches Use's result.
func TestTaintThroughInterfaceMethod(t *testing.T) {
	_, p := loadFixture(t, "ipa")
	sum := p.summary("ipa.Use")
	if sum == nil || len(sum.Results) != 1 {
		t.Fatalf("bad summary for ipa.Use: %+v", sum)
	}
	found := false
	for _, o := range sum.Results[0].originsSorted() {
		if strings.Contains(o.Desc, "time.Now") {
			found = true
		}
	}
	if !found {
		t.Errorf("ipa.Use result lacks the time.Now origin from the Clock implementation; got %v",
			sum.Results[0].originsSorted())
	}
}

// TestSummaryMemoizationAcrossPackages checks that summaries computed
// once serve every later consumer: the reporting pass and a second
// package's analysis perform zero new summary computations, and the
// cross-package summary substitution still works.
func TestSummaryMemoizationAcrossPackages(t *testing.T) {
	l, p := loadFixture(t, "ipa", "ipb")
	n := p.Computations()
	if n == 0 {
		t.Fatal("no summary computations recorded")
	}
	relay := p.summary("ipb.Relay")
	if relay == nil || len(relay.Results) != 1 || !relay.Results[0].params["0"] {
		t.Errorf("ipb.Relay does not substitute ipa.Ping's memoized summary: %+v", relay)
	}
	for i := 0; i < 2; i++ {
		p.TaintFindings("ipa")
		p.TaintFindings("ipb")
		p.LeakFindings("ipa")
		p.AtomicFindings("ipb")
	}
	if got := p.Computations(); got != n {
		t.Errorf("reporting passes recomputed summaries: %d → %d", n, got)
	}
	if Get(l) != p {
		t.Error("Get did not memoize the Program per loader")
	}
}
