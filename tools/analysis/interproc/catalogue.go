package interproc

import (
	"go/ast"
	"go/types"
	"strings"
)

// The source catalogue: calls whose results are nondeterministic by
// construction. Order-only sources (map ranges, multi-ready selects,
// sync.Map.Range) are seeded in taint.go because they are statements,
// not calls.

// sourceFor reports whether fn is a catalogued nondeterminism source,
// with the origin description and whether the nondeterminism is
// order-only (none of the call sources are).
func sourceFor(fn *types.Func) (desc string, order bool, ok bool) {
	if fn.Pkg() == nil {
		return "", false, false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		// Methods: only seeded *rand.Rand generators would qualify, and
		// those inherit taint from their seed through the conservative
		// stdlib propagation model instead.
		return "", false, false
	}
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "time." + name + " wall-clock read", false, true
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(name, "New") || name == "Seed" {
			return "", false, false
		}
		return "unseeded " + pkg + "." + name, false, true
	case "runtime":
		switch name {
		case "GOMAXPROCS", "NumCPU", "NumGoroutine", "NumCgoCall":
			return "runtime." + name + " scheduler/host probe", false, true
		}
	case "os":
		switch name {
		case "Environ", "Getenv", "LookupEnv", "Hostname", "Getpid", "Getppid", "Getuid":
			return "os." + name + " process-environment read", false, true
		}
	}
	return "", false, false
}

// isSanitizer reports whether fn launders order-only taint: sorting a
// permutation of a deterministic multiset yields a deterministic
// sequence. Value taint (clocks, rand, environment) survives sorting
// and is not stripped.
func isSanitizer(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// sinkSpec is one consensus-critical sink: a function whose listed
// arguments must never receive nondeterministic bytes, because they
// feed signatures, hashes, durable ledger frames, wire payloads, or
// reputation accounting.
type sinkSpec struct {
	pkg   string // package path
	recv  string // receiver type name; "" for package-level functions
	name  string
	args  []int // argument-vector indexes (receiver at 0); nil = every non-receiver argument
	label string
}

// sinks is the consensus-critical catalogue. Paths name the real
// module; analysistest fixtures reuse the same import paths under
// testdata/src, so one catalogue serves both.
var sinks = []sinkSpec{
	// Signing and signature verification: the message bytes are the
	// protocol's commitment; any nondeterminism here forks honest nodes.
	{pkg: "repchain/internal/crypto", recv: "PrivateKey", name: "Sign", label: "crypto.Sign message bytes"},
	{pkg: "repchain/internal/crypto", recv: "PublicKey", name: "Verify", args: []int{1}, label: "crypto.Verify message bytes"},
	{pkg: "repchain/internal/crypto", recv: "VerifyCache", name: "VerifyBatch", label: "crypto batch-verify items"},
	{pkg: "repchain/internal/crypto", recv: "VerifyCache", name: "VerifyBatchWorkers", args: []int{1}, label: "crypto batch-verify items"},
	{pkg: "repchain/internal/crypto", name: "VerifyBatch", label: "crypto batch-verify items"},
	{pkg: "repchain/internal/crypto", name: "VerifyBatchWorkers", args: []int{0}, label: "crypto batch-verify items"},
	// Hash inputs: block hashes and Merkle roots must be replayable.
	{pkg: "repchain/internal/crypto", recv: "MerkleBuilder", name: "Add", label: "Merkle leaf bytes"},
	{pkg: "repchain/internal/crypto", name: "MerkleRoot", label: "Merkle leaf bytes"},
	{pkg: "repchain/internal/crypto", name: "BuildMerkleProof", args: []int{0}, label: "Merkle leaf bytes"},
	{pkg: "repchain/internal/crypto", name: "Sum", label: "block-hash input bytes"},
	{pkg: "repchain/internal/crypto", name: "SumParts", label: "block-hash input bytes"},
	// Durable ledger frames.
	{pkg: "repchain/internal/ledger", recv: "MemoryStore", name: "Append", label: "ledger append"},
	{pkg: "repchain/internal/ledger", recv: "FileStore", name: "Append", label: "ledger append"},
	// Wire payloads: both sides decode these into consensus state.
	{pkg: "repchain/internal/transport", recv: "Endpoint", name: "Send", args: []int{3}, label: "wire payload"},
	{pkg: "repchain/internal/transport", recv: "Endpoint", name: "Multicast", args: []int{3}, label: "wire payload"},
	// Reputation accounting: scores feed leader election.
	{pkg: "repchain/internal/reputation", recv: "Table", name: "RecordChecked", label: "reputation update"},
	{pkg: "repchain/internal/reputation", recv: "Table", name: "RecordSilence", label: "reputation update"},
	{pkg: "repchain/internal/reputation", recv: "Table", name: "RecordRevealed", label: "reputation update"},
	{pkg: "repchain/internal/reputation", recv: "Table", name: "RecordForgery", label: "reputation update"},
}

// sinkFor returns the catalogue entry fn matches, or nil.
func sinkFor(fn *types.Func) *sinkSpec {
	if fn.Pkg() == nil {
		return nil
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	for i := range sinks {
		s := &sinks[i]
		if s.pkg == pkg && s.name == name && s.recv == recv {
			return s
		}
	}
	return nil
}

// sinkArgIndexes resolves the spec's sink positions for one call, in
// argument-vector space (receiver at index 0 when fn is a method).
func (s *sinkSpec) sinkArgIndexes(call *ast.CallExpr, fn *types.Func) []int {
	if s.args != nil {
		return s.args
	}
	offset := 0
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		offset = 1
	}
	out := make([]int, 0, len(call.Args))
	for i := range call.Args {
		out = append(out, offset+i)
	}
	return out
}
