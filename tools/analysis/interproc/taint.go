package interproc

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Origin is one occurrence of a nondeterminism source. Order-only
// origins (map iteration, select arrival, sync.Map.Range) are cleansed
// by sorting; value origins (wall clock, unseeded rand, environment,
// pointer formatting) survive any permutation.
type Origin struct {
	Desc  string
	Pos   token.Pos
	Order bool
}

// Taint is the lattice element: a set of source occurrences plus a set
// of input bits. An input bit is "3" (the whole of input 3, receiver
// at 0) or "3.buf" (one first-level field of input 3). Field bits are
// what keep the analysis usable: a tracer that stores a wall timestamp
// into its ring buffer taints the engine's tracer field, not the whole
// engine object every consensus value hangs off.
type Taint struct {
	origins map[*Origin]bool
	params  map[string]bool
}

func newTaint() Taint {
	return Taint{origins: map[*Origin]bool{}, params: map[string]bool{}}
}

func (t Taint) empty() bool { return len(t.origins) == 0 && len(t.params) == 0 }

func (t *Taint) ensure() {
	if t.origins == nil {
		t.origins = map[*Origin]bool{}
		t.params = map[string]bool{}
	}
}

func (t *Taint) add(o *Origin)       { t.ensure(); t.origins[o] = true }
func (t *Taint) addParam(bit string) { t.ensure(); t.params[bit] = true }
func (t *Taint) union(s Taint) bool {
	changed := false
	for o := range s.origins {
		if !t.origins[o] {
			t.ensure()
			t.origins[o] = true
			changed = true
		}
	}
	for p := range s.params {
		if !t.params[p] {
			t.ensure()
			t.params[p] = true
			changed = true
		}
	}
	return changed
}

// stripOrder removes order-only origins: a sorted permutation of a
// deterministic multiset is deterministic.
func (t *Taint) stripOrder() {
	for o := range t.origins {
		if o.Order {
			delete(t.origins, o)
		}
	}
}

// refineField maps a container's taint onto one of its fields: whole-
// input bits gain the field qualifier, while origins and already-
// qualified bits carry over unchanged (one level of field
// sensitivity).
func (t Taint) refineField(field string) Taint {
	out := newTaint()
	for o := range t.origins {
		out.origins[o] = true
	}
	for bit := range t.params {
		if !strings.Contains(bit, ".") {
			out.params[bit+"."+field] = true
		} else {
			out.params[bit] = true
		}
	}
	return out
}

// bitIndex parses the input index out of a bit ("3" or "3.f" → 3).
func bitIndex(bit string) int {
	if i := strings.IndexByte(bit, '.'); i >= 0 {
		bit = bit[:i]
	}
	n, err := strconv.Atoi(bit)
	if err != nil {
		return -1
	}
	return n
}

func (t Taint) originsSorted() []*Origin {
	out := make([]*Origin, 0, len(t.origins))
	for o := range t.origins {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Desc < out[j].Desc
	})
	return out
}

func (t Taint) paramsSorted() []string {
	out := make([]string, 0, len(t.params))
	for p := range t.params {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// fingerKey renders the taint canonically for summary fingerprints.
func (t Taint) fingerKey() string {
	var sb strings.Builder
	for _, o := range t.originsSorted() {
		fmt.Fprintf(&sb, "o%d:%s;", o.Pos, o.Desc)
	}
	for _, p := range t.paramsSorted() {
		fmt.Fprintf(&sb, "p%s;", p)
	}
	return sb.String()
}

// ParamSink records that an input bit reaches a catalogued sink
// through this function's body (possibly via further calls).
type ParamSink struct {
	Bit   string
	Sink  string
	Chain string
}

// ParamFlow records that pointee state of input To — field Field, or
// the whole pointee when Field is "" — absorbs the taint From carries,
// e.g. (*Encoder).PutBytes stores its argument into the receiver's
// buffer field.
type ParamFlow struct {
	To    int
	Field string
	From  Taint
}

// ParamGlobalField records that an input bit is stored into
// package-level state (a field reachable from a package-level
// variable), which is the one heap channel the engine tracks
// module-globally.
type ParamGlobalField struct {
	Bit   string
	Field string
}

// Summary is one function's memoized dataflow abstract: where its
// results derive from, which inputs reach sinks or escape into pointee
// or package-level state, and whether calling it can never return
// (goroleak's leak predicate).
type Summary struct {
	Results     []Taint
	ParamSinks  []ParamSink
	ParamFlows  []ParamFlow
	GlobalField []ParamGlobalField
	LoopNoExit  bool
	Leaky       bool
}

// fingerprint canonically serializes the summary so the SCC fixpoint
// can detect stabilization.
func (s *Summary) fingerprint() string {
	var sb strings.Builder
	for i, r := range s.Results {
		fmt.Fprintf(&sb, "r%d[%s]", i, r.fingerKey())
	}
	for _, ps := range s.ParamSinks {
		fmt.Fprintf(&sb, "s%s:%s:%s;", ps.Bit, ps.Sink, ps.Chain)
	}
	for _, pf := range s.ParamFlows {
		fmt.Fprintf(&sb, "f%d.%s[%s]", pf.To, pf.Field, pf.From.fingerKey())
	}
	for _, gf := range s.GlobalField {
		fmt.Fprintf(&sb, "g%s:%s;", gf.Bit, gf.Field)
	}
	fmt.Fprintf(&sb, "L%v%v", s.LoopNoExit, s.Leaky)
	return sb.String()
}

// Finding is one source-to-sink flow the reporting pass surfaces: the
// position where the nondeterministic value meets the sink-bound call,
// the origin it carries, the sink it reaches, and the call chain in
// between.
type Finding struct {
	Pos    token.Pos
	Origin *Origin
	Sink   string
	Chain  string
}

// maxChainHops bounds the call-chain strings carried in summaries.
const maxChainHops = 8

// fnAnalysis is the per-function flow-insensitive taint interpreter.
// It runs to a local fixpoint over the body (taint only grows), reads
// callee summaries from the program, and accumulates the function's
// own summary plus any fresh-origin findings.
type fnAnalysis struct {
	p  *Program
	fi *FuncInfo

	vars        map[types.Object]*Taint            // whole-variable taint
	cells       map[types.Object]map[string]*Taint // first-level field taint
	resultObjs  []types.Object                     // named results, for bare returns
	nestedRets  map[*ast.ReturnStmt]bool
	sum         *Summary
	paramIdx    map[types.Object]int
	paramSinks  map[string]ParamSink
	paramFlows  map[string]*ParamFlow
	globalField map[string]ParamGlobalField
	findings    map[string]Finding
	changed     bool
}

// analyzeFunc computes a function's summary; with a non-nil reporter
// it also emits the fresh-origin findings discovered along the way
// (the reporting pass dettaint drives per package).
func (p *Program) analyzeFunc(fi *FuncInfo, report func(Finding)) *Summary {
	a := &fnAnalysis{
		p:           p,
		fi:          fi,
		vars:        map[types.Object]*Taint{},
		cells:       map[types.Object]map[string]*Taint{},
		nestedRets:  map[*ast.ReturnStmt]bool{},
		paramIdx:    map[types.Object]int{},
		paramSinks:  map[string]ParamSink{},
		paramFlows:  map[string]*ParamFlow{},
		globalField: map[string]ParamGlobalField{},
		findings:    map[string]Finding{},
	}
	a.sum = &Summary{Results: make([]Taint, fi.Sig.Results().Len())}
	for i, obj := range fi.Params {
		t := newTaint()
		t.addParam(strconv.Itoa(i))
		a.vars[obj] = &t
		a.paramIdx[obj] = i
	}
	if res := fi.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					a.resultObjs = append(a.resultObjs, obj)
				}
			}
		}
	}
	// Returns inside nested function literals do not return from fi.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if r, ok := m.(*ast.ReturnStmt); ok {
					a.nestedRets[r] = true
				}
				return true
			})
		}
		return true
	})

	const maxPasses = 12
	for pass := 0; pass < maxPasses; pass++ {
		a.changed = false
		a.walk(fi.Decl.Body)
		if !a.changed {
			break
		}
	}

	a.sum.LoopNoExit = hasNoExitLoop(fi.Decl.Body)
	a.sum.Leaky = a.sum.LoopNoExit || p.callsLeaky(fi.Pkg, fi.Decl.Body)

	for _, key := range sortedKeys(a.paramSinks) {
		a.sum.ParamSinks = append(a.sum.ParamSinks, a.paramSinks[key])
	}
	for _, key := range sortedKeys(a.paramFlows) {
		a.sum.ParamFlows = append(a.sum.ParamFlows, *a.paramFlows[key])
	}
	for _, key := range sortedKeys(a.globalField) {
		a.sum.GlobalField = append(a.sum.GlobalField, a.globalField[key])
	}

	if report != nil {
		for _, key := range sortedKeys(a.findings) {
			report(a.findings[key])
		}
	}
	return a.sum
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (a *fnAnalysis) report(pos token.Pos, o *Origin, sink, chain string) {
	key := fmt.Sprintf("%d|%d|%s|%s", pos, o.Pos, o.Desc, sink)
	if _, ok := a.findings[key]; !ok {
		a.findings[key] = Finding{Pos: pos, Origin: o, Sink: sink, Chain: chain}
	}
}

func (a *fnAnalysis) addParamSink(bit, sink, chain string) {
	if strings.Count(chain, "→") > maxChainHops {
		chain = "…"
	}
	key := fmt.Sprintf("%s|%s", bit, sink)
	if _, ok := a.paramSinks[key]; !ok {
		a.paramSinks[key] = ParamSink{Bit: bit, Sink: sink, Chain: chain}
		a.changed = true
	}
}

func (a *fnAnalysis) addParamFlow(to int, field string, t Taint) {
	key := fmt.Sprintf("%d|%s", to, field)
	cur := a.paramFlows[key]
	if cur == nil {
		cur = &ParamFlow{To: to, Field: field, From: newTaint()}
		a.paramFlows[key] = cur
	}
	if cur.From.union(t) {
		a.changed = true
	}
}

func (a *fnAnalysis) addGlobalField(bit, field string) {
	key := fmt.Sprintf("%s|%s", bit, field)
	if _, ok := a.globalField[key]; !ok {
		a.globalField[key] = ParamGlobalField{Bit: bit, Field: field}
		a.changed = true
	}
}

// varTaint returns (and creates) the whole-variable taint cell.
func (a *fnAnalysis) varTaint(obj types.Object) *Taint {
	t := a.vars[obj]
	if t == nil {
		fresh := newTaint()
		t = &fresh
		a.vars[obj] = t
	}
	return t
}

// cellTaint returns (and creates) one field taint cell of a variable.
func (a *fnAnalysis) cellTaint(obj types.Object, field string) *Taint {
	m := a.cells[obj]
	if m == nil {
		m = map[string]*Taint{}
		a.cells[obj] = m
	}
	t := m[field]
	if t == nil {
		fresh := newTaint()
		t = &fresh
		m[field] = t
	}
	return t
}

// wholeTaint reads a variable including everything stored in its
// fields: passing the container passes its contents.
func (a *fnAnalysis) wholeTaint(obj types.Object) Taint {
	t := newTaint()
	if v := a.vars[obj]; v != nil {
		t.union(*v)
	}
	for _, c := range a.cells[obj] {
		t.union(*c)
	}
	return t
}

// taintLoc unions taint into (obj, field) — the whole variable when
// field is "" — and exports a ParamFlow when obj is a parameter, since
// mutating a parameter's pointee state is visible to the caller.
func (a *fnAnalysis) taintLoc(obj types.Object, field string, t Taint) {
	if obj == nil || t.empty() {
		return
	}
	var cell *Taint
	if field == "" {
		cell = a.varTaint(obj)
	} else {
		cell = a.cellTaint(obj, field)
	}
	if cell.union(t) {
		a.changed = true
	}
	if pi, isParam := a.paramIdx[obj]; isParam && refLike(obj.Type()) {
		a.addParamFlow(pi, field, t)
	}
}

// refLike reports whether a parameter of this type shares state with
// the caller's argument: writes through by-value structs, arrays, and
// basics stay local to the callee frame.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// rootOf walks x.f[i].g chains to the variable the expression is
// rooted in, plus the field selected directly on that root ("" when
// the root itself is addressed). Package-level state and temporaries
// have no root.
func (a *fnAnalysis) rootOf(e ast.Expr) (types.Object, string) {
	field := ""
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := a.fi.Pkg.Info.Uses[x]
			if obj == nil {
				obj = a.fi.Pkg.Info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok && !isPackageLevel(v) {
				return v, field
			}
			return nil, ""
		case *ast.SelectorExpr:
			// A qualified package selector has no root variable.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := a.fi.Pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return nil, ""
				}
			}
			if sel, ok := a.fi.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				field = x.Sel.Name // innermost selector wins: the root's own field
			} else {
				field = ""
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// walk performs one pass over the body, interpreting every
// taint-relevant construct. ast.Inspect descends into nested function
// literals, whose effects (sink hits, captured-variable taint) belong
// to this frame.
func (a *fnAnalysis) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			a.assignStmt(s)
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					a.assign(name, a.exprTaint(s.Values[i]))
				}
			}
		case *ast.RangeStmt:
			a.rangeStmt(s)
		case *ast.SelectStmt:
			a.selectStmt(s)
		case *ast.SendStmt:
			a.assign(s.Chan, a.exprTaint(s.Value))
		case *ast.ReturnStmt:
			a.returnStmt(s)
		case *ast.CallExpr:
			a.evalCall(s) // sink checks and side effects in any position
		}
		return true
	})
}

func (a *fnAnalysis) assignStmt(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple: call results, comma-ok forms.
		var taints []Taint
		switch rhs := ast.Unparen(s.Rhs[0]).(type) {
		case *ast.CallExpr:
			taints = a.evalCall(rhs)
		case *ast.TypeAssertExpr:
			taints = []Taint{a.exprTaint(rhs.X), {}}
		case *ast.IndexExpr:
			taints = []Taint{a.exprTaint(rhs.X), {}}
		case *ast.UnaryExpr:
			if rhs.Op == token.ARROW {
				taints = []Taint{a.exprTaint(rhs.X), {}}
			}
		}
		for i, lhs := range s.Lhs {
			if i < len(taints) {
				a.assign(lhs, taints[i])
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i < len(s.Rhs) {
			a.assign(lhs, a.exprTaint(s.Rhs[i]))
		}
	}
}

// assign delivers taint to an assignable expression: variables union
// it whole; field/index/pointee writes land on the root variable's
// matching field cell; writes into package-level state register
// module-global field taint.
func (a *fnAnalysis) assign(lhs ast.Expr, t Taint) {
	if t.empty() {
		return
	}
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := a.fi.Pkg.Info.Defs[id]
		if obj == nil {
			obj = a.fi.Pkg.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			if isPackageLevel(v) {
				a.registerGlobalWrite(v.Pkg().Path()+".var."+v.Name(), t)
			} else {
				a.taintLoc(v, "", t)
			}
		}
		return
	}
	if root, field := a.rootOf(lhs); root != nil {
		a.taintLoc(root, field, t)
		return
	}
	// No local root: this writes through package-level state. Record
	// the field in the module-global set.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if key := a.fieldKeyOf(sel); key != "" {
			a.registerGlobalWrite(key, t)
		}
	}
}

func (a *fnAnalysis) registerGlobalWrite(key string, t Taint) {
	for _, o := range t.originsSorted() {
		if _, known := a.p.fieldTaint[key]; !known {
			a.p.fieldTaint[key] = o
			a.changed = true
		}
	}
	for _, bit := range t.paramsSorted() {
		a.addGlobalField(bit, key)
	}
}

// fieldKeyOf names the field a selector selects, or "" for non-field
// selections.
func (a *fnAnalysis) fieldKeyOf(sel *ast.SelectorExpr) string {
	selection, ok := a.fi.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	return fieldKey(selection)
}

func fieldKey(selection *types.Selection) string {
	obj := selection.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + recvTypeName(selection.Recv()) + "." + obj.Name()
}

func (a *fnAnalysis) rangeStmt(s *ast.RangeStmt) {
	t := a.exprTaint(s.X)
	tv, ok := a.fi.Pkg.Info.Types[s.X]
	if ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !a.rangeOrderArgued(s) && !a.sourceArgued(s.For) {
			t.ensure()
			t.add(a.p.origin("map iteration order", s.For, true))
		}
	}
	if s.Key != nil {
		a.assign(s.Key, t)
	}
	if s.Value != nil {
		a.assign(s.Value, t)
	}
}

// rangeOrderArgued reports whether the range line (or the line above)
// carries a reasoned //repchain:ordered-irrelevant annotation — the
// site is already argued commutative for detrange, so seeding order
// taint from it would demand the same justification twice.
// sourceArgued reports whether the line (or the line above) carries a
// reasoned //repchain:dettaint-ok annotation.
func (a *fnAnalysis) sourceArgued(pos token.Pos) bool {
	posn := a.p.Fset.Position(pos)
	if a.p.sourceArgued[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)] {
		return true
	}
	return a.p.sourceArgued[fmt.Sprintf("%s:%d", posn.Filename, posn.Line-1)]
}

func (a *fnAnalysis) rangeOrderArgued(s *ast.RangeStmt) bool {
	posn := a.p.Fset.Position(s.For)
	if a.p.orderedIrrelevant[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)] {
		return true
	}
	return a.p.orderedIrrelevant[fmt.Sprintf("%s:%d", posn.Filename, posn.Line-1)]
}

func (a *fnAnalysis) selectStmt(s *ast.SelectStmt) {
	comms := 0
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 || a.sourceArgued(s.Select) {
		return
	}
	o := a.p.origin("select arrival order", s.Select, true)
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			t := newTaint()
			t.add(o)
			for _, lhs := range as.Lhs {
				a.assign(lhs, t)
			}
		}
	}
}

func (a *fnAnalysis) returnStmt(s *ast.ReturnStmt) {
	if a.nestedRets[s] {
		return
	}
	if len(s.Results) == 0 {
		for i, obj := range a.resultObjs {
			if i < len(a.sum.Results) {
				if a.sum.Results[i].union(a.wholeTaint(obj)) {
					a.changed = true
				}
			}
		}
		return
	}
	if len(s.Results) == 1 && len(a.sum.Results) > 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			taints := a.evalCall(call)
			for i := range a.sum.Results {
				if i < len(taints) {
					if a.sum.Results[i].union(taints[i]) {
						a.changed = true
					}
				}
			}
			return
		}
	}
	for i, res := range s.Results {
		if i < len(a.sum.Results) {
			if a.sum.Results[i].union(a.exprTaint(res)) {
				a.changed = true
			}
		}
	}
}

// exprTaint computes the taint of an expression.
func (a *fnAnalysis) exprTaint(e ast.Expr) Taint {
	switch x := e.(type) {
	case *ast.Ident:
		obj := a.fi.Pkg.Info.Uses[x]
		if obj == nil {
			obj = a.fi.Pkg.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok && !isPackageLevel(v) {
			return a.wholeTaint(v)
		}
		return Taint{}
	case *ast.SelectorExpr:
		if selection, ok := a.fi.Pkg.Info.Selections[x]; ok && selection.Kind() == types.FieldVal {
			t := newTaint()
			if o, tainted := a.p.fieldTaint[fieldKey(selection)]; tainted {
				t.add(o)
			}
			t.union(a.fieldRead(x.X, x.Sel.Name))
			return t
		}
		return a.exprTaint(x.X) // method value, qualified name
	case *ast.CallExpr:
		res := a.evalCall(x)
		out := newTaint()
		for _, r := range res {
			out.union(r)
		}
		return out
	case *ast.ParenExpr:
		return a.exprTaint(x.X)
	case *ast.StarExpr:
		return a.exprTaint(x.X)
	case *ast.UnaryExpr:
		return a.exprTaint(x.X) // includes &x and <-ch (channel object taint)
	case *ast.BinaryExpr:
		t := a.exprTaint(x.X)
		t.union(a.exprTaint(x.Y))
		return t
	case *ast.IndexExpr:
		return a.exprTaint(x.X)
	case *ast.SliceExpr:
		return a.exprTaint(x.X)
	case *ast.TypeAssertExpr:
		return a.exprTaint(x.X)
	case *ast.CompositeLit:
		return a.compositeTaint(x)
	case *ast.FuncLit:
		return Taint{} // the body's effects are walked in this frame
	}
	return Taint{}
}

// fieldRead computes the taint of base.field: the root variable's
// matching field cell when base is a plain variable — with whole-input
// bits refined to field bits, which is what separates frame.Payload
// from frame.Trace — and the conservative whole taint of base
// otherwise.
func (a *fnAnalysis) fieldRead(base ast.Expr, field string) Taint {
	base = ast.Unparen(base)
	if star, ok := base.(*ast.StarExpr); ok {
		base = ast.Unparen(star.X)
	}
	if id, ok := base.(*ast.Ident); ok {
		obj := a.fi.Pkg.Info.Uses[id]
		if obj == nil {
			obj = a.fi.Pkg.Info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && !isPackageLevel(v) {
			t := newTaint()
			if c := a.cells[v]; c != nil {
				if ct := c[field]; ct != nil {
					t.union(*ct)
				}
			}
			if vt := a.vars[v]; vt != nil {
				t.union(vt.refineField(field))
			}
			return t
		}
		return Taint{}
	}
	return a.exprTaint(base)
}

func (a *fnAnalysis) compositeTaint(lit *ast.CompositeLit) Taint {
	t := newTaint()
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			t.union(a.exprTaint(kv.Value))
			continue
		}
		t.union(a.exprTaint(elt))
	}
	return t
}

// substitute maps a callee-space taint into the caller: origins pass
// through; bit "i" becomes the full taint of argument i; bit "i.f"
// becomes the taint of argument i's field f, computed field-
// sensitively at the call site.
func (a *fnAnalysis) substitute(t Taint, argTaints []Taint, argExprs []ast.Expr) Taint {
	out := newTaint()
	for o := range t.origins {
		out.origins[o] = true
	}
	for bit := range t.params {
		i := bitIndex(bit)
		if i < 0 || i >= len(argTaints) {
			continue
		}
		if dot := strings.IndexByte(bit, '.'); dot >= 0 {
			out.union(a.fieldRead(argExprs[i], bit[dot+1:]))
		} else {
			out.union(argTaints[i])
		}
	}
	return out
}

// evalCall interprets one call: sources, sanitizers, sinks, callee
// summaries, and the conservative propagation model for code outside
// the universe. It returns the taint of each result.
func (a *fnAnalysis) evalCall(call *ast.CallExpr) []Taint {
	info := a.fi.Pkg.Info

	// Conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []Taint{a.exprTaint(call.Args[0])}
		}
		return []Taint{{}}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append", "min", "max":
				t := newTaint()
				for _, arg := range call.Args {
					t.union(a.exprTaint(arg))
				}
				return []Taint{t}
			case "copy":
				if len(call.Args) == 2 {
					a.assign(call.Args[0], a.exprTaint(call.Args[1]))
				}
				return []Taint{{}}
			default:
				return []Taint{{}}
			}
		}
	}

	fn := calleeFunc(a.fi.Pkg, call)
	nResults := 1
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			nResults = sig.Results().Len()
		}
	} else if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			nResults = sig.Results().Len()
		}
	}

	// Argument vector: receiver (when the call is a method call on a
	// value) followed by the plain arguments, matching summary space.
	argExprs := make([]ast.Expr, 0, len(call.Args)+1)
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				argExprs = append(argExprs, sel.X)
			}
		}
	}
	argExprs = append(argExprs, call.Args...)
	argTaints := make([]Taint, len(argExprs))
	for i, arg := range argExprs {
		argTaints[i] = a.exprTaint(arg)
	}
	unionArgs := func() Taint {
		t := newTaint()
		for _, at := range argTaints {
			t.union(at)
		}
		return t
	}

	// Unresolvable call (function value): conservative propagation.
	if fn == nil {
		t := unionArgs()
		t.union(a.exprTaint(call.Fun))
		return repeatTaint(t, nResults)
	}

	// Source catalogue. A reasoned //repchain:dettaint-ok on the read
	// itself seeds no origin: the justification is given once, where
	// the nondeterministic value enters, instead of at every sink its
	// container later reaches.
	if desc, order, isSource := sourceFor(fn); isSource {
		t := newTaint()
		if !a.sourceArgued(call.Pos()) {
			t.add(a.p.origin(desc, call.Pos(), order))
		}
		return repeatTaint(t, nResults)
	}

	// Pointer formatting through fmt.
	if o := a.pointerFormatOrigin(fn, call); o != nil && !a.sourceArgued(call.Pos()) {
		t := unionArgs()
		t.add(o)
		return repeatTaint(t, nResults)
	}

	// Sanitizers: sorting launders order-only taint in place.
	if isSanitizer(fn) && len(call.Args) > 0 {
		if root, field := a.rootOf(call.Args[0]); root != nil {
			if field == "" {
				a.varTaint(root).stripOrder()
				for _, c := range a.cells[root] {
					c.stripOrder()
				}
			} else {
				a.cellTaint(root, field).stripOrder()
			}
		}
		return repeatTaint(Taint{}, nResults)
	}

	// sync.Map.Range hands its callback pairs in nondeterministic
	// order: seed the literal's parameters.
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Range" && len(call.Args) == 1 && !a.sourceArgued(call.Pos()) {
		if lit, ok := call.Args[0].(*ast.FuncLit); ok {
			o := a.p.origin("sync.Map.Range iteration order", call.Pos(), true)
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						t := newTaint()
						t.add(o)
						a.taintLoc(obj, "", t)
					}
				}
			}
		}
	}

	// Sink catalogue: report fresh origins, export input-bit flows.
	if spec := sinkFor(fn); spec != nil {
		for _, idx := range spec.sinkArgIndexes(call, fn) {
			if idx >= len(argExprs) {
				continue
			}
			t := argTaints[idx]
			for _, o := range t.originsSorted() {
				a.report(argExprs[idx].Pos(), o, spec.label, "")
			}
			for _, bit := range t.paramsSorted() {
				a.addParamSink(bit, spec.label, spec.label)
			}
		}
	}

	// Universe callees: apply memoized summaries (merged over every
	// implementation for interface dispatch).
	callees := a.p.calleeInfos(a.fi.Pkg, call)
	if len(callees) > 0 {
		out := make([]Taint, nResults)
		for _, callee := range callees {
			sum := a.p.summary(callee.Key)
			if sum == nil {
				continue // same-SCC callee on the first iteration: bottom
			}
			for i := range out {
				if i < len(sum.Results) {
					out[i].union(a.substitute(sum.Results[i], argTaints, argExprs))
				}
			}
			for _, ps := range sum.ParamSinks {
				i := bitIndex(ps.Bit)
				if i < 0 || i >= len(argExprs) {
					continue
				}
				src := newTaint()
				src.addParam(ps.Bit)
				t := a.substitute(src, argTaints, argExprs)
				chain := callee.Name + " → " + ps.Chain
				for _, o := range t.originsSorted() {
					a.report(argExprs[i].Pos(), o, ps.Sink, chain)
				}
				for _, bit := range t.paramsSorted() {
					a.addParamSink(bit, ps.Sink, chain)
				}
			}
			for _, pf := range sum.ParamFlows {
				if pf.To >= len(argExprs) {
					continue
				}
				t := a.substitute(pf.From, argTaints, argExprs)
				if t.empty() {
					continue
				}
				if root, rf := a.rootOf(argExprs[pf.To]); root != nil {
					// The callee taints its input's field; locate that
					// state in the caller. When the argument is itself
					// a field of a local (e.tracer), one level of
					// precision is kept by landing on that field.
					target := pf.Field
					if rf != "" {
						target = rf
					}
					a.taintLoc(root, target, t)
				}
			}
			for _, gf := range sum.GlobalField {
				src := newTaint()
				src.addParam(gf.Bit)
				a.registerGlobalWrite(gf.Field, a.substitute(src, argTaints, argExprs))
			}
		}
		return out
	}

	// Outside the universe (standard library): results derive from
	// every argument, and a method call with tainted arguments may
	// store them in its receiver.
	t := unionArgs()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && !t.empty() && len(argExprs) > 0 {
		if root, rf := a.rootOf(argExprs[0]); root != nil {
			a.taintLoc(root, rf, t)
		}
	}
	return repeatTaint(t, nResults)
}

func repeatTaint(t Taint, n int) []Taint {
	if n < 1 {
		n = 1
	}
	out := make([]Taint, n)
	for i := range out {
		out[i] = t
	}
	return out
}

// pointerFormatOrigin detects %p (and chan/func arguments) flowing
// through the fmt formatting family: rendered addresses differ per
// process, so they are value-nondeterministic.
func (a *fnAnalysis) pointerFormatOrigin(fn *types.Func, call *ast.CallExpr) *Origin {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return nil
	}
	switch fn.Name() {
	case "Sprintf", "Sprint", "Sprintln", "Fprintf", "Printf", "Errorf", "Appendf":
	default:
		return nil
	}
	for _, arg := range call.Args {
		if tv, ok := a.fi.Pkg.Info.Types[arg]; ok {
			if tv.Value != nil && tv.Value.Kind() == constant.String &&
				strings.Contains(constant.StringVal(tv.Value), "%p") {
				return a.p.origin("fmt %p pointer formatting", call.Pos(), false)
			}
			if tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Chan, *types.Signature:
					return a.p.origin("fmt rendering of a channel/function address", call.Pos(), false)
				}
			}
		}
	}
	return nil
}

// TaintFindings runs the reporting pass over one package's functions,
// reusing every memoized summary; it performs no new summary
// computations.
func (p *Program) TaintFindings(pkgPath string) []Finding {
	var out []Finding
	for _, key := range p.fnOrder {
		fi := p.fns[key]
		if fi.Pkg.Path != pkgPath {
			continue
		}
		p.analyzeFunc(fi, func(f Finding) { out = append(out, f) })
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		if out[i].Origin.Pos != out[j].Origin.Pos {
			return out[i].Origin.Pos < out[j].Origin.Pos
		}
		return out[i].Sink < out[j].Sink
	})
	return out
}
