package interproc

import (
	"go/ast"
	"go/token"
	"sort"

	"repchain/tools/analysis"
)

// Goroutine-leak detection. A function is Leaky when calling it can
// never return: its body contains an unconditional loop with no
// reachable exit (no return, no break that binds to it, no goto, no
// panic/os.Exit), or it synchronously calls a Leaky function. The
// goroleak analyzer reports `go` statements whose target is Leaky —
// goroutines with no join or cancellation path out.

// noExitLoopPos returns the position of the first `for`-without-
// condition loop in body that has no exit, or token.NoPos. Nested
// function literals are skipped: their loops run in other frames.
func noExitLoopPos(body ast.Node) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond == nil {
			if !loopExits(fs) {
				pos = fs.For
				return false
			}
		}
		return true
	})
	return pos
}

func hasNoExitLoop(body ast.Node) bool { return noExitLoopPos(body) != token.NoPos }

// loopExits reports whether an unconditional loop has any way out:
// a return, an unlabeled break at the loop's own nesting depth, any
// labeled break, a goto, or a call that unwinds the goroutine (panic,
// os.Exit, runtime.Goexit, log.Fatal*).
func loopExits(loop *ast.ForStmt) bool {
	for _, st := range loop.Body.List {
		if stmtExits(st, 0) {
			return true
		}
	}
	return false
}

// stmtExits scans one statement for an exit from the enclosing
// unconditional loop. depth counts break-capturing constructs between
// the loop body and the statement: an unlabeled break with depth > 0
// binds to an inner construct, not the loop.
func stmtExits(s ast.Stmt, depth int) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				// A labeled break leaves every construct up to the
				// labeled one, so it exits this loop whether the label
				// names it or an enclosing statement.
				return true
			}
			return depth == 0
		case token.GOTO:
			return true // may jump past the loop; treat as exit-capable
		}
		return false
	case *ast.ExprStmt:
		return callUnwinds(st.X)
	case *ast.BlockStmt:
		return anyStmtExits(st.List, depth)
	case *ast.IfStmt:
		if st.Init != nil && stmtExits(st.Init, depth) {
			return true
		}
		if anyStmtExits(st.Body.List, depth) {
			return true
		}
		return st.Else != nil && stmtExits(st.Else, depth)
	case *ast.LabeledStmt:
		return stmtExits(st.Stmt, depth)
	case *ast.ForStmt:
		return anyStmtExits(st.Body.List, depth+1)
	case *ast.RangeStmt:
		return anyStmtExits(st.Body.List, depth+1)
	case *ast.SwitchStmt:
		return clausesExit(st.Body.List, depth+1)
	case *ast.TypeSwitchStmt:
		return clausesExit(st.Body.List, depth+1)
	case *ast.SelectStmt:
		return clausesExit(st.Body.List, depth+1)
	}
	return false
}

func anyStmtExits(list []ast.Stmt, depth int) bool {
	for _, s := range list {
		if stmtExits(s, depth) {
			return true
		}
	}
	return false
}

func clausesExit(list []ast.Stmt, depth int) bool {
	for _, clause := range list {
		switch cc := clause.(type) {
		case *ast.CaseClause:
			if anyStmtExits(cc.Body, depth) {
				return true
			}
		case *ast.CommClause:
			if anyStmtExits(cc.Body, depth) {
				return true
			}
		}
	}
	return false
}

// callUnwinds reports whether an expression statement is a call that
// unwinds the goroutine rather than continuing the loop.
func callUnwinds(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch id.Name + "." + fun.Sel.Name {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}

// callsLeaky reports whether body synchronously calls a function whose
// summary says it never returns. `go` statements and nested function
// literals are skipped: work they start runs in other frames. An
// interface call counts only when every shape-compatible
// implementation is leaky.
func (p *Program) callsLeaky(pkg *analysis.Package, body ast.Node) bool {
	leaky := false
	ast.Inspect(body, func(n ast.Node) bool {
		if leaky {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if p.calleesLeaky(pkg, call) {
			leaky = true
		}
		return true
	})
	return leaky
}

// calleesLeaky reports whether every universe target of a call is
// leaky (and there is at least one).
func (p *Program) calleesLeaky(pkg *analysis.Package, call *ast.CallExpr) bool {
	callees := p.calleeInfos(pkg, call)
	if len(callees) == 0 {
		return false
	}
	for _, c := range callees {
		s := p.summary(c.Key)
		if s == nil || !s.Leaky {
			return false
		}
	}
	return true
}

// LeakFinding is one `go` statement whose goroutine has no join or
// cancellation path: its target can never return.
type LeakFinding struct {
	Pos     token.Pos // the go statement
	What    string    // target description for the message
	LoopPos token.Pos // the offending loop, when local to the target
}

// LeakFindings reports the leaky `go` statements of one package,
// using the memoized summaries for named targets.
func (p *Program) LeakFindings(pkgPath string) []LeakFinding {
	var out []LeakFinding
	for _, key := range p.fnOrder {
		fi := p.fns[key]
		if fi.Pkg.Path != pkgPath {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				if pos := noExitLoopPos(lit.Body); pos != token.NoPos {
					out = append(out, LeakFinding{Pos: g.Go, What: "goroutine literal", LoopPos: pos})
				} else if p.callsLeaky(fi.Pkg, lit.Body) {
					out = append(out, LeakFinding{Pos: g.Go, What: "goroutine literal (via a callee that never returns)"})
				}
				return true
			}
			if p.calleesLeaky(fi.Pkg, g.Call) {
				callees := p.calleeInfos(fi.Pkg, g.Call)
				lf := LeakFinding{Pos: g.Go, What: callees[0].Name}
				if lp := noExitLoopPos(callees[0].Decl.Body); lp != token.NoPos {
					lf.LoopPos = lp
				}
				out = append(out, lf)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
