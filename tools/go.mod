// The lint suite lives in its own module so the main repchain module
// stays stdlib-only. It would normally depend on golang.org/x/tools
// (go/analysis, analysistest); this tree must build offline with an
// empty module cache, so tools/analysis re-implements the minimal
// surface of that framework on the standard library instead. The
// analyzer packages are written against that surface so they can be
// ported to the real golang.org/x/tools/go/analysis with a one-line
// import swap once network access is available.
//
// The require+replace below links the tools module to the main module
// by filesystem path (no registry fetch) so analyzers can share
// repchain/internal/designdoc, the DESIGN.md catalogue parser, with
// the main module's drift test.
module repchain/tools

go 1.22

require repchain v0.0.0

replace repchain => ../
