// Command repchain-lint is the multichecker for RepChain's written
// determinism and concurrency invariants. It runs eight custom
// analyzers over the main module:
//
//	detrange     no range over maps in deterministic packages
//	wallclock    no time.Now/Since/Until or global math/rand there
//	lockguard    `// guarded by mu` fields only touched under mu
//	metricname   metric names are constants from the DESIGN.md §4c catalogue
//	errwrapcheck sentinel errors compared with errors.Is, wrapped with %w
//	dettaint     no nondeterminism source flows into a consensus sink,
//	             through any call chain (interprocedural, DESIGN.md §4j)
//	goroleak     no goroutine without a join or cancellation path
//	atomicmix    no field accessed both via sync/atomic and plainly
//
// Usage (from the tools module):
//
//	go run ./cmd/repchain-lint -C .. ./...
//
// Exit status is 1 when any unsuppressed finding remains (or the
// -deadline budget is exceeded); `make lint` and the CI lint job gate
// merges on that. -json emits every finding — suppressed ones
// included, with their annotation state — as a machine-readable triage
// report. -timing prints per-analyzer wall time. Suppressions are
// //repchain:<directive> <reason> comments — see DESIGN.md §4e.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repchain/internal/designdoc"
	"repchain/tools/analysis"
	"repchain/tools/lint/atomicmix"
	"repchain/tools/lint/detrange"
	"repchain/tools/lint/dettaint"
	"repchain/tools/lint/errwrapcheck"
	"repchain/tools/lint/goroleak"
	"repchain/tools/lint/lockguard"
	"repchain/tools/lint/metricname"
	"repchain/tools/lint/wallclock"
)

func main() {
	chdir := flag.String("C", ".", "root of the repchain module (where DESIGN.md lives)")
	jsonOut := flag.Bool("json", false, "emit findings (suppressed included) as JSON on stdout")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	deadline := flag.Duration("deadline", 120*time.Second, "fail if the whole lint run exceeds this wall time")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repchain-lint [-C repo-root] [-json] [-timing] [-deadline d] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(*chdir, patterns, *jsonOut, *timing, *deadline); err != nil {
		fmt.Fprintf(os.Stderr, "repchain-lint: %v\n", err)
		os.Exit(2)
	}
}

// record is one finding in the -json triage report.
type record struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(root string, patterns []string, jsonOut, timing bool, deadline time.Duration) error {
	start := time.Now()
	root, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	catalogue, err := designdoc.LoadMetricCatalogue(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return err
	}
	analyzers := []*analysis.Analyzer{
		detrange.Analyzer,
		wallclock.Analyzer,
		lockguard.Analyzer,
		metricname.New(catalogue, "DESIGN.md §4c"),
		errwrapcheck.Analyzer,
		dettaint.Analyzer,
		goroleak.Analyzer,
		atomicmix.Analyzer,
	}
	loader := analysis.NewLoader(analysis.LoadConfig{Dir: root})
	pkgs, err := loader.Targets(patterns...)
	if err != nil {
		return err
	}
	linted := pkgs[:0]
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.Path, "repchain/tools") { // the lint suite does not lint itself
			linted = append(linted, pkg)
		}
	}
	elapsed := make([]time.Duration, len(analyzers))
	for i, a := range analyzers {
		if a.Prepare == nil {
			continue
		}
		t0 := time.Now()
		if err := a.Prepare(loader, loader.Loaded()); err != nil {
			return fmt.Errorf("prepare %s: %v", a.Name, err)
		}
		elapsed[i] += time.Since(t0)
	}
	var records []record
	for _, pkg := range linted {
		for i, a := range analyzers {
			t0 := time.Now()
			diags, err := analysis.RunAnalyzer(a, loader, pkg)
			elapsed[i] += time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				posn := loader.Fset.Position(d.Pos)
				file := posn.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				records = append(records, record{
					File: file, Line: posn.Line, Col: posn.Column,
					Analyzer: a.Name, Message: d.Message, Suppressed: d.Suppressed,
				})
			}
		}
	}
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	records = dedupe(records)

	if timing {
		for i, a := range analyzers {
			fmt.Fprintf(os.Stderr, "repchain-lint: timing %-12s %8.1fms\n", a.Name, float64(elapsed[i].Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "repchain-lint: timing %-12s %8.1fms\n", "total", float64(time.Since(start).Microseconds())/1000)
	}

	failing := 0
	for _, r := range records {
		if !r.Suppressed {
			failing++
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if records == nil {
			records = []record{}
		}
		if err := enc.Encode(records); err != nil {
			return err
		}
	} else {
		for _, r := range records {
			if r.Suppressed {
				continue
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", r.File, r.Line, r.Col, r.Analyzer, r.Message)
		}
	}
	if total := time.Since(start); total > deadline {
		fmt.Fprintf(os.Stderr, "repchain-lint: run took %s, over the %s deadline; profile with -timing\n",
			total.Round(time.Millisecond), deadline)
		os.Exit(1)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "repchain-lint: %d finding(s)\n", failing)
		os.Exit(1)
	}
	return nil
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(in []record) []record {
	out := in[:0]
	for i, r := range in {
		if i == 0 || r != in[i-1] {
			out = append(out, r)
		}
	}
	return out
}
