// Command repchain-lint is the multichecker for RepChain's written
// determinism and concurrency invariants. It runs five custom
// analyzers over the main module:
//
//	detrange     no range over maps in deterministic packages
//	wallclock    no time.Now/Since/Until or global math/rand there
//	lockguard    `// guarded by mu` fields only touched under mu
//	metricname   metric names are constants from the DESIGN.md §4c catalogue
//	errwrapcheck sentinel errors compared with errors.Is, wrapped with %w
//
// Usage (from the tools module):
//
//	go run ./cmd/repchain-lint -C .. ./...
//
// Exit status is 1 when any unsuppressed finding remains; `make lint`
// and the CI lint job gate merges on that. Suppressions are
// //repchain:<directive> <reason> comments — see DESIGN.md §4e.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repchain/internal/designdoc"
	"repchain/tools/analysis"
	"repchain/tools/lint/detrange"
	"repchain/tools/lint/errwrapcheck"
	"repchain/tools/lint/lockguard"
	"repchain/tools/lint/metricname"
	"repchain/tools/lint/wallclock"
)

func main() {
	chdir := flag.String("C", ".", "root of the repchain module (where DESIGN.md lives)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: repchain-lint [-C repo-root] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := run(*chdir, patterns); err != nil {
		fmt.Fprintf(os.Stderr, "repchain-lint: %v\n", err)
		os.Exit(2)
	}
}

func run(root string, patterns []string) error {
	root, err := filepath.Abs(root)
	if err != nil {
		return err
	}
	catalogue, err := designdoc.LoadMetricCatalogue(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return err
	}
	analyzers := []*analysis.Analyzer{
		detrange.Analyzer,
		wallclock.Analyzer,
		lockguard.Analyzer,
		metricname.New(catalogue, "DESIGN.md §4c"),
		errwrapcheck.Analyzer,
	}
	loader := analysis.NewLoader(analysis.LoadConfig{Dir: root})
	pkgs, err := loader.Targets(patterns...)
	if err != nil {
		return err
	}
	var findings []string
	for _, pkg := range pkgs {
		if strings.HasPrefix(pkg.Path, "repchain/tools") {
			continue // the lint suite does not lint itself
		}
		for _, a := range analyzers {
			diags, err := analysis.RunAnalyzer(a, loader, pkg)
			if err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				posn := loader.Fset.Position(d.Pos)
				file := posn.Filename
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				findings = append(findings,
					fmt.Sprintf("%s:%d:%d: [%s] %s", file, posn.Line, posn.Column, a.Name, d.Message))
			}
		}
	}
	sort.Strings(findings)
	findings = dedupe(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "repchain-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
	return nil
}

// dedupe removes adjacent duplicates from a sorted slice.
func dedupe(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
