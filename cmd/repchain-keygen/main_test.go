package main

import (
	"path/filepath"
	"testing"

	"repchain/internal/transport"
)

func TestRunWritesLoadableRoster(t *testing.T) {
	out := filepath.Join(t.TempDir(), "roster.json")
	if err := run(4, 4, 2, 3, 7, 9901, "127.0.0.1", out); err != nil {
		t.Fatalf("run() error = %v", err)
	}
	d, err := transport.LoadDeployment(out)
	if err != nil {
		t.Fatalf("LoadDeployment() error = %v", err)
	}
	l, n, m := d.Counts()
	if l != 4 || n != 4 || m != 3 {
		t.Fatalf("Counts() = %d/%d/%d", l, n, m)
	}
	// Keys must be usable: sign/verify round trip for one node.
	spec, err := d.Node("governor/0")
	if err != nil {
		t.Fatal(err)
	}
	priv, err := spec.PrivateKeyOf()
	if err != nil {
		t.Fatal(err)
	}
	pub, err := spec.PublicKeyOf()
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Verify([]byte("probe"), priv.Sign([]byte("probe"))); err != nil {
		t.Fatalf("roster keys unusable: %v", err)
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := run(2, 2, 1, 2, 42, 9901, "127.0.0.1", a); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 2, 1, 2, 42, 9901, "127.0.0.1", b); err != nil {
		t.Fatal(err)
	}
	da, err := transport.LoadDeployment(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := transport.LoadDeployment(b)
	if err != nil {
		t.Fatal(err)
	}
	if da.Nodes[0].PublicKey != db.Nodes[0].PublicKey {
		t.Fatal("same seed produced different keys")
	}
}

func TestRunRejectsBadTopology(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.json")
	if err := run(3, 2, 1, 2, 0, 9901, "127.0.0.1", out); err == nil {
		t.Fatal("run() accepted a non-integral topology")
	}
}
