// Command repchain-keygen generates a deployment roster for a TCP
// alliance: node identities, Ed25519 keys, IM-signed certificates, and
// the provider–collector topology, written as JSON consumed by
// repchain-node.
//
// Usage:
//
//	repchain-keygen -providers 4 -collectors 4 -degree 2 -governors 3 -o roster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repchain/internal/crypto"
	"repchain/internal/identity"
	"repchain/internal/transport"
)

func main() {
	var (
		providers  = flag.Int("providers", 4, "number of providers (l)")
		collectors = flag.Int("collectors", 4, "number of collectors (n)")
		degree     = flag.Int("degree", 2, "collectors per provider (r)")
		governors  = flag.Int("governors", 3, "number of governors (m)")
		seedFlag   = flag.Int64("seed", 0, "deterministic seed; 0 = random keys")
		basePort   = flag.Int("base-port", 9701, "first TCP port; nodes get consecutive ports")
		host       = flag.String("host", "127.0.0.1", "host/IP for node addresses")
		out        = flag.String("o", "roster.json", "output file ('-' for stdout)")
	)
	flag.Parse()

	if err := run(*providers, *collectors, *degree, *governors, *seedFlag, *basePort, *host, *out); err != nil {
		fmt.Fprintln(os.Stderr, "repchain-keygen:", err)
		os.Exit(1)
	}
}

func run(providers, collectors, degree, governors int, seedFlag int64, basePort int, host, out string) error {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers:  providers,
		Collectors: collectors,
		Degree:     degree,
	})
	if err != nil {
		return err
	}
	var seed []byte
	var im *identity.Manager
	if seedFlag != 0 {
		seed = make([]byte, crypto.SeedSize)
		for i := 0; i < 8; i++ {
			seed[i] = byte(seedFlag >> (8 * i))
		}
		im, err = identity.NewManagerFromSeed(seed)
	} else {
		im, err = identity.NewManager()
	}
	if err != nil {
		return err
	}
	roster, err := identity.RegisterAll(im, topo, governors, seed)
	if err != nil {
		return err
	}
	deployment, err := transport.NewDeployment(im, roster, host, basePort)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(deployment, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal roster: %w", err)
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o600); err != nil {
		return fmt.Errorf("write roster: %w", err)
	}
	fmt.Printf("wrote %s: %d providers, %d collectors, %d governors on %s:%d..%d\n",
		out, providers, collectors, governors, host, basePort,
		basePort+providers+collectors+governors-1)
	return nil
}
