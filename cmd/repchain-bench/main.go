// Command repchain-bench regenerates the evaluation tables recorded in
// EXPERIMENTS.md: one experiment per analytical claim of the paper
// (DESIGN.md §3 maps each claim to an experiment ID).
//
// Usage:
//
//	repchain-bench                  # run everything
//	repchain-bench -run E1,E5      # run selected experiments
//	repchain-bench -seed 7 -scale 2 # bigger workloads, fixed seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repchain/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (E1..E13) or 'all'")
	seed := flag.Int64("seed", 42, "random seed for reproducible tables")
	scale := flag.Int("scale", 1, "workload multiplier (>=1)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *runFlag != "all" {
		ids = strings.Split(*runFlag, ",")
	}

	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		table, err := experiments.Run(id, *seed, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repchain-bench: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
