package main

import (
	"os"
	"path/filepath"
	"testing"

	"repchain"
)

var testValidator = repchain.ValidatorFunc(func(t repchain.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

// buildChainDir runs a chain with persistence and returns the
// directory holding governor-*.chain files.
func buildChainDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	chain, err := repchain.New(
		repchain.WithTopology(2, 2, 1),
		repchain.WithGovernors(2),
		repchain.WithValidator(testValidator),
		repchain.WithSeed(8),
		repchain.WithChainDir(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < 4; i++ {
			valid := i%2 == 0
			payload := []byte{0, byte(i), byte(r)}
			if valid {
				payload[0] = 1
			}
			if _, err := chain.Submit(i%2, "inspect/demo", payload, valid); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := chain.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInspectVerifiesGoodChain(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-0.chain")
	if err := run(path, 0, false); err != nil {
		t.Fatalf("run() error = %v", err)
	}
	if err := run(path, 2, false); err != nil {
		t.Fatalf("run(-block 2) error = %v", err)
	}
	if err := run(path, 0, true); err != nil {
		t.Fatalf("run(-q) error = %v", err)
	}
}

func TestInspectRejectsCorruptChain(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-1.chain")
	segs, err := filepath.Glob(filepath.Join(path, "chain-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no chain segments in %s (err=%v)", path, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, true); err == nil {
		t.Fatal("corrupt chain accepted")
	}
}

func TestInspectRequiresPath(t *testing.T) {
	if err := run("", 0, false); err == nil {
		t.Fatal("missing -chain accepted")
	}
	missing := filepath.Join(t.TempDir(), "missing.chain")
	if err := run(missing, 0, false); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	if _, err := os.Stat(missing); err == nil {
		t.Fatal("inspector created the missing file")
	}
}

func TestInspectMissingBlock(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-0.chain")
	if err := run(path, 99, false); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

// TestInspectPrunedChain verifies the inspector handles a snapshotted,
// pruned chain directory: anchored verification and a summary starting
// at the first retrievable block.
func TestInspectPrunedChain(t *testing.T) {
	dir := t.TempDir()
	chain, err := repchain.New(
		repchain.WithTopology(2, 2, 1),
		repchain.WithGovernors(2),
		repchain.WithValidator(testValidator),
		repchain.WithSeed(8),
		repchain.WithChainDir(dir),
		repchain.WithSnapshotEvery(2),
		repchain.WithSegmentBytes(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		if _, err := chain.Submit(0, "inspect/demo", []byte{1, byte(r)}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := chain.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "governor-0.chain")
	if err := run(path, 0, false); err != nil {
		t.Fatalf("run() over pruned chain error = %v", err)
	}
	if err := run(path, 0, true); err != nil {
		t.Fatalf("run(-q) over pruned chain error = %v", err)
	}
	if err := run(path, 6, false); err != nil {
		t.Fatalf("run(-block 6) over pruned chain error = %v", err)
	}
}
