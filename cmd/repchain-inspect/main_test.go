package main

import (
	"os"
	"path/filepath"
	"testing"

	"repchain"
)

var testValidator = repchain.ValidatorFunc(func(t repchain.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

// buildChainDir runs a chain with persistence and returns the
// directory holding governor-*.chain files.
func buildChainDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	chain, err := repchain.New(
		repchain.WithTopology(2, 2, 1),
		repchain.WithGovernors(2),
		repchain.WithValidator(testValidator),
		repchain.WithSeed(8),
		repchain.WithChainDir(dir),
	)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < 4; i++ {
			valid := i%2 == 0
			payload := []byte{0, byte(i), byte(r)}
			if valid {
				payload[0] = 1
			}
			if _, err := chain.Submit(i%2, "inspect/demo", payload, valid); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := chain.RunRound(); err != nil {
			t.Fatal(err)
		}
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestInspectVerifiesGoodChain(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-0.chain")
	if err := run(path, 0, false); err != nil {
		t.Fatalf("run() error = %v", err)
	}
	if err := run(path, 2, false); err != nil {
		t.Fatalf("run(-block 2) error = %v", err)
	}
	if err := run(path, 0, true); err != nil {
		t.Fatalf("run(-q) error = %v", err)
	}
}

func TestInspectRejectsCorruptChain(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-1.chain")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, true); err == nil {
		t.Fatal("corrupt chain accepted")
	}
}

func TestInspectRequiresPath(t *testing.T) {
	if err := run("", 0, false); err == nil {
		t.Fatal("missing -chain accepted")
	}
	missing := filepath.Join(t.TempDir(), "missing.chain")
	if err := run(missing, 0, false); err == nil {
		t.Fatal("nonexistent file accepted")
	}
	if _, err := os.Stat(missing); err == nil {
		t.Fatal("inspector created the missing file")
	}
}

func TestInspectMissingBlock(t *testing.T) {
	dir := buildChainDir(t)
	path := filepath.Join(dir, "governor-0.chain")
	if err := run(path, 99, false); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}
