// Command repchain-inspect audits and displays a persisted chain
// (the `governor-<j>.chain` segment directories written under
// WithChainDir / Config.ChainDir; pre-segmented single-file chains are
// migrated on open). It recovers the segmented store, verifies serial
// ordering, hash links, transaction-root commitments, and — on pruned
// chains — the snapshot anchor, and prints a block-by-block summary of
// every retrievable block. It can also scrape
// a running node's admin endpoint (repchain-node -admin-addr).
//
// Usage:
//
//	repchain-inspect -chain data/governor-0.chain
//	repchain-inspect -chain data/governor-0.chain -block 7   # one block in detail
//	repchain-inspect metrics -admin 127.0.0.1:9180           # live metrics snapshot
//	repchain-inspect trace -admin 127.0.0.1:9180 <txhash>    # tx lifecycle spans
//	repchain-inspect cluster -admins host:p1,host:p2         # fleet health + merged metrics
//	repchain-inspect cluster -admins ... trace <txhash>      # cross-node stitched trace
//	repchain-inspect events -admin 127.0.0.1:9180 -follow    # tail the consensus event stream
package main

import (
	"flag"
	"fmt"
	"os"

	"repchain/internal/ledger"
	"repchain/internal/tx"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "metrics":
			if err := runMetrics(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "repchain-inspect metrics:", err)
				os.Exit(1)
			}
			return
		case "trace":
			if err := runTrace(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "repchain-inspect trace:", err)
				os.Exit(1)
			}
			return
		case "cluster":
			if err := runCluster(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "repchain-inspect cluster:", err)
				os.Exit(1)
			}
			return
		case "events":
			if err := runEvents(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "repchain-inspect events:", err)
				os.Exit(1)
			}
			return
		}
	}

	var (
		chainPath = flag.String("chain", "", "path to a governor-<j>.chain directory (or legacy single-file chain)")
		blockNum  = flag.Uint64("block", 0, "print one block in detail (0 = summary of all)")
		quiet     = flag.Bool("q", false, "verify only; print nothing but errors")
	)
	flag.Parse()

	if err := run(*chainPath, *blockNum, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "repchain-inspect:", err)
		os.Exit(1)
	}
}

func run(chainPath string, blockNum uint64, quiet bool) error {
	if chainPath == "" {
		return fmt.Errorf("-chain is required")
	}
	// OpenFileStore creates missing files (store semantics); an
	// inspector must not.
	if _, err := os.Stat(chainPath); err != nil {
		return fmt.Errorf("chain file: %w", err)
	}
	store, err := ledger.OpenFileStore(chainPath)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()

	if err := ledger.VerifyChain(store); err != nil {
		return fmt.Errorf("chain verification FAILED: %w", err)
	}
	if quiet {
		return nil
	}
	height := store.Height()
	first := store.FirstAvailable()
	if first > 1 {
		fmt.Printf("%s: height %d, blocks %d-%d retrievable (1-%d pruned behind snapshot), chain verified (serials, hash links, tx roots, snapshot anchor)\n",
			chainPath, height, first, height, first-1)
	} else {
		fmt.Printf("%s: %d blocks, chain verified (serials, hash links, tx roots)\n", chainPath, height)
	}
	if snapH, head, ok := store.SnapshotAnchor(); ok {
		fmt.Printf("snapshot  height %d  head %s\n", snapH, head.Short())
	}
	ri := store.Recovery()
	if ri.TornBytesDropped > 0 || ri.SnapshotsSkipped > 0 {
		fmt.Printf("recovery  dropped %d torn tail bytes, skipped %d damaged snapshots\n",
			ri.TornBytesDropped, ri.SnapshotsSkipped)
	}

	if blockNum > 0 {
		return printBlock(store, blockNum)
	}
	for s := first; s <= height; s++ {
		b, err := store.Get(s)
		if err != nil {
			return err
		}
		valid, invalid, unchecked := tally(b)
		fmt.Printf("block %4d  %s  by %-12s  %3d records (%d valid, %d invalid, %d unchecked)\n",
			b.Serial, b.Hash().Short(), b.Proposer, len(b.Records), valid, invalid, unchecked)
	}
	return nil
}

func tally(b ledger.Block) (valid, invalid, unchecked int) {
	for _, r := range b.Records {
		switch {
		case r.Unchecked:
			unchecked++
		case r.Status == tx.StatusValid:
			valid++
		default:
			invalid++
		}
	}
	return valid, invalid, unchecked
}

func printBlock(store ledger.Store, s uint64) error {
	b, err := store.Get(s)
	if err != nil {
		return err
	}
	fmt.Printf("\nblock %d\n", b.Serial)
	fmt.Printf("  hash      %s\n", b.Hash())
	fmt.Printf("  prev      %s\n", b.PrevHash)
	fmt.Printf("  tx root   %s\n", b.TxRoot)
	fmt.Printf("  proposer  %s\n", b.Proposer)
	fmt.Printf("  records   %d\n", len(b.Records))
	for i, r := range b.Records {
		status := r.Status.String()
		if r.Unchecked {
			status += " (unchecked)"
		}
		fmt.Printf("  [%3d] %s  from %-12s  kind %-24s  label %s  %s\n",
			i, r.Signed.ID().Short(), r.Signed.Tx.Provider, r.Signed.Tx.Kind, r.Label, status)
	}
	return nil
}
