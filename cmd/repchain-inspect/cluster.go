package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repchain/internal/events"
	"repchain/internal/fleet"
)

// parseAdmins turns a comma-separated -admins list into fleet nodes,
// naming each node by its address.
func parseAdmins(admins string) ([]fleet.Node, error) {
	var nodes []fleet.Node
	for _, a := range strings.Split(admins, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		nodes = append(nodes, fleet.Node{Name: a, URL: "http://" + a})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-admins needs at least one host:port")
	}
	return nodes, nil
}

// runCluster implements `repchain-inspect cluster`: scrape every admin
// endpoint and print a fleet health report and merged metrics, or —
// with `trace <txhash>` — the stitched cross-node trace with per-hop
// transport latency.
func runCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	admins := fs.String("admins", "127.0.0.1:9180", "comma-separated admin endpoints of the cluster's nodes")
	asJSON := fs.Bool("json", false, "emit the report as JSON (for artifacts and tooling)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes, err := parseAdmins(*admins)
	if err != nil {
		return err
	}
	cluster := fleet.Scraper{}.Scrape(nodes)

	if fs.NArg() > 0 {
		switch fs.Arg(0) {
		case "trace":
			if fs.NArg() != 2 {
				return fmt.Errorf("usage: repchain-inspect cluster -admins ... trace <txhash-or-prefix>")
			}
			return printMergedTrace(cluster, fs.Arg(1), *asJSON)
		default:
			return fmt.Errorf("unknown cluster subcommand %q (want: trace)", fs.Arg(0))
		}
	}

	health := cluster.Health()
	merged := cluster.MergedMetrics()
	if *asJSON {
		return json.NewEncoder(os.Stdout).Encode(struct {
			Health  fleet.HealthReport `json:"health"`
			Traces  []string           `json:"traces"`
			Metrics any                `json:"metrics"`
		}{health, cluster.TraceIDs(), merged})
	}

	fmt.Printf("cluster health: %d/100\n", health.Score)
	for _, f := range health.Findings {
		fmt.Printf("  ! %s\n", f)
	}
	if len(health.Findings) == 0 {
		fmt.Println("  no findings")
	}
	sharded := false
	for _, cm := range health.Committees {
		if cm != 0 {
			sharded = true
			break
		}
	}
	fmt.Printf("heights (max within-committee skew %d):\n", health.HeightSkew)
	for _, name := range sortedNames(health.Heights) {
		if sharded {
			fmt.Printf("  %-28s %d (committee %d)\n", name, health.Heights[name], health.Committees[name])
			continue
		}
		fmt.Printf("  %-28s %d\n", name, health.Heights[name])
	}
	if len(health.PeerLags) > 0 {
		fmt.Println("per-peer transport latency (recv - send timestamps):")
		for _, l := range health.PeerLags {
			fmt.Printf("  %-22s -> %-22s n=%-5d mean=%-12s max=%s\n",
				l.From, l.To, l.Count, time.Duration(l.MeanNS), time.Duration(l.MaxNS))
		}
	}
	for _, s := range health.SlowRounds {
		fmt.Printf("slow round: node=%s round=%d gap=%s p95=%s\n",
			s.Node, s.Round, time.Duration(s.GapNS), time.Duration(s.P95NS))
	}
	if ids := cluster.TraceIDs(); len(ids) > 0 {
		fmt.Printf("traces: %d distinct transaction(s) stitchable across the fleet\n", len(ids))
	}
	return nil
}

func printMergedTrace(cluster *fleet.Cluster, id string, asJSON bool) error {
	mt := cluster.MergedTrace(id)
	if len(mt.Spans) == 0 {
		return fmt.Errorf("no spans for trace %q anywhere in the fleet (propagation enabled, and the hash at least 8 hex chars?)", id)
	}
	if asJSON {
		return json.NewEncoder(os.Stdout).Encode(mt)
	}
	fmt.Printf("trace %s: %d spans across the fleet\n", mt.Trace, len(mt.Spans))
	for _, s := range mt.Spans {
		attrs := make([]string, 0, len(s.Attrs))
		for _, a := range s.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		wall := ""
		if s.Wall != 0 {
			wall = time.Unix(0, s.Wall).Format("15:04:05.000000") + " "
		}
		fmt.Printf("  %sround %-4d %-10s %-22s %s\n", wall, s.Round, s.Stage, s.Node, strings.Join(attrs, " "))
	}
	if len(mt.Hops) > 0 {
		fmt.Println("transport hops:")
		for _, h := range mt.Hops {
			fmt.Printf("  %-22s -> %-22s %-14s %s\n", h.From, h.To, h.Kind, time.Duration(h.LatencyNS))
		}
	}
	return nil
}

// runEvents implements `repchain-inspect events`: dump or tail a
// node's structured consensus event stream with round/node filters.
func runEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:9180", "admin endpoint of a running repchain-node")
	node := fs.String("node", "", "only events from this node ID")
	round := fs.Uint64("round", 0, "only events from this round (0 = all)")
	follow := fs.Bool("follow", false, "keep polling for new events (live tail)")
	interval := fs.Duration("interval", time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}

	after := uint64(0)
	for {
		path := fmt.Sprintf("/events?after=%d", after)
		if *node != "" {
			path += "&node=" + *node
		}
		if *round != 0 {
			path += fmt.Sprintf("&round=%d", *round)
		}
		body, err := adminGet(*admin, path)
		if err != nil {
			return err
		}
		evs, err := events.Replay(body)
		body.Close()
		if err != nil {
			return err
		}
		for _, e := range evs {
			if e.Seq > after {
				after = e.Seq
			}
			attrs := make([]string, 0, len(e.Attrs))
			for _, a := range e.Attrs {
				attrs = append(attrs, a.Key+"="+a.Value)
			}
			wall := ""
			if e.Wall != 0 {
				wall = time.Unix(0, e.Wall).Format("15:04:05.000000") + " "
			}
			fmt.Printf("%sseq %-6d round %-4d %-20s %-22s %s\n",
				wall, e.Seq, e.Round, e.Type, e.Node, strings.Join(attrs, " "))
		}
		if !*follow {
			return nil
		}
		time.Sleep(*interval)
	}
}
