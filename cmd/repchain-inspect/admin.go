package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repchain/internal/metrics"
	"repchain/internal/trace"
)

// adminGet fetches a path from a node's -admin-addr endpoint.
func adminGet(addr, path string) (io.ReadCloser, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + addr + path
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp.Body, nil
}

// runMetrics implements `repchain-inspect metrics`: scrape
// /metrics.json from a running node and print a readable snapshot.
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:9180", "admin endpoint of a running repchain-node")
	raw := fs.Bool("raw", false, "dump the JSON snapshot verbatim")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := adminGet(*admin, "/metrics.json")
	if err != nil {
		return err
	}
	defer body.Close()

	if *raw {
		_, err := io.Copy(os.Stdout, body)
		return err
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(body).Decode(&snap); err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}
	printSnapshot(snap)
	return nil
}

func printSnapshot(snap metrics.Snapshot) {
	if len(snap.Counters) > 0 {
		fmt.Println("counters:")
		for _, name := range sortedNames(snap.Counters) {
			fmt.Printf("  %-44s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, name := range sortedNames(snap.Gauges) {
			fmt.Printf("  %-44s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("histograms:")
		for _, name := range sortedNames(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Printf("  %-44s count=%d sum=%.6g p50=%.6g p95=%.6g\n",
				name, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.95))
		}
	}
	if len(snap.Series) > 0 {
		fmt.Println("series:")
		for _, name := range sortedNames(snap.Series) {
			s := snap.Series[name]
			fmt.Printf("  %-44s count=%d mean=%.6g p50=%.6g p95=%.6g max=%.6g\n",
				name, s.Count, s.Mean, s.P50, s.P95, s.Max)
		}
	}
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runTrace implements `repchain-inspect trace <txhash>`: fetch the
// transaction's lifecycle spans from /traces and print them
// sign-to-commit in recording order.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:9180", "admin endpoint of a running repchain-node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: repchain-inspect trace [-admin host:port] <txhash-or-prefix>")
	}
	txID := fs.Arg(0)
	body, err := adminGet(*admin, "/traces?tx="+txID)
	if err != nil {
		return err
	}
	defer body.Close()

	var spans []trace.Span
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s trace.Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return fmt.Errorf("decode span %q: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans recorded for %q (is tracing enabled, and the hash at least 8 hex chars?)", txID)
	}
	fmt.Printf("trace %s: %d spans\n", spans[0].Trace, len(spans))
	for _, s := range spans {
		attrs := make([]string, 0, len(s.Attrs))
		for _, a := range s.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		fmt.Printf("  round %-4d %-10s %-14s %s\n", s.Round, s.Stage, s.Node, strings.Join(attrs, " "))
	}
	return nil
}
