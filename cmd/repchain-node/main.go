// Command repchain-node runs one alliance node over real TCP, or a
// whole alliance on loopback in demo mode.
//
// Single-node usage (one process per node, shared roster file):
//
//	repchain-keygen -o roster.json
//	repchain-node -roster roster.json -id governor/0 -rounds 10 -epoch 2026-07-04T12:00:00Z
//	repchain-node -roster roster.json -id collector/0 -rounds 10 -epoch 2026-07-04T12:00:00Z
//	...one invocation per node in the roster...
//
// Demo usage (everything in one process, real sockets):
//
//	repchain-node -demo -rounds 6
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"

	"repchain/internal/admin"
	"repchain/internal/crypto"
	"repchain/internal/events"
	"repchain/internal/identity"
	"repchain/internal/metrics"
	"repchain/internal/reputation"
	"repchain/internal/trace"
	"repchain/internal/transport"
	"repchain/internal/tx"
)

var validator = tx.ValidatorFunc(func(t tx.Transaction) bool {
	return len(t.Payload) > 0 && t.Payload[0] == 1
})

func main() {
	var (
		rosterPath = flag.String("roster", "roster.json", "deployment file from repchain-keygen")
		id         = flag.String("id", "", "node ID to run, e.g. governor/0")
		demo       = flag.Bool("demo", false, "run a full alliance on loopback in this process")
		rounds     = flag.Int("rounds", 6, "rounds to run")
		roundDur   = flag.Duration("round", 400*time.Millisecond, "round duration R")
		epoch      = flag.String("epoch", "", "shared start time (RFC 3339); empty = now+1s (demo) ")
		txPerRound = flag.Int("tx", 4, "transactions per provider per round")
		seed       = flag.Int64("seed", 1, "seed for workload randomness")
		stateDir   = flag.String("state", "", "directory persisting governor chain + reputation state across restarts")
		adminAddr  = flag.String("admin-addr", "", "serve /metrics, /healthz, /readyz, /traces, /events, and pprof on this address (e.g. 127.0.0.1:9180; empty = off)")
		committee  = flag.Int("committee", 0, "committee index this node's chain belongs to (published as the chain.committee gauge so fleet tooling scores height skew within, not across, committees)")
		traceCap   = flag.Int("trace-cap", 8192, "lifecycle span ring-buffer capacity behind /traces (0 = tracing off)")
		eventsCap  = flag.Int("events-cap", 8192, "consensus event ring-buffer capacity behind /events (0 = events off)")
		propagate  = flag.Bool("trace-propagate", false, "stamp trace context onto outgoing frames so traces stitch across processes (v2 frames; off keeps the v1 wire format)")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")

		retryMax     = flag.Int("retry-max", 0, "delivery attempts per frame (0 = default)")
		retryBase    = flag.Duration("retry-base", 0, "backoff before the first retry (0 = default)")
		retryCap     = flag.Duration("retry-cap", 0, "backoff ceiling (0 = default)")
		dialTimeout  = flag.Duration("dial-timeout", 0, "per-dial timeout (0 = default)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-write timeout (0 = default)")

		mempoolShards  = flag.Int("mempool-shards", 0, "governor mempool shards by provider (0 = legacy unbounded queue)")
		mempoolCap     = flag.Int("mempool-cap", 0, "per-shard mempool capacity (0 = unbounded; full shards evict oldest)")
		admissionFloor = flag.Float64("admission-floor", 0, "shed uploads from collectors whose reputation weight is below this floor (0 = off)")
		blockLimit     = flag.Int("block-limit", 0, "transactions per block, b_limit (0 = unlimited)")
		inflightLimit  = flag.Int("inflight-limit", 0, "max undrained frames held per peer (0 = unbounded)")

		snapshotEvery = flag.Int("snapshot-every", 0, "write a recovery snapshot and prune chain segments every N rounds (0 = off; needs -state)")
		segmentBytes  = flag.Int64("segment-bytes", 0, "chain segment roll threshold in bytes (0 = 4 MiB default)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repchain-node:", err)
		os.Exit(1)
	}

	retry := transport.RetryPolicy{
		MaxAttempts:  *retryMax,
		BaseBackoff:  *retryBase,
		MaxBackoff:   *retryCap,
		DialTimeout:  *dialTimeout,
		WriteTimeout: *writeTimeout,
	}
	pool := poolOptions{
		mempoolShards:  *mempoolShards,
		mempoolCap:     *mempoolCap,
		admissionFloor: *admissionFloor,
		blockLimit:     *blockLimit,
		inflightLimit:  *inflightLimit,
		snapshotEvery:  *snapshotEvery,
		segmentBytes:   *segmentBytes,
	}
	obs := obsOptions{
		adminAddr: *adminAddr,
		committee: *committee,
		traceCap:  *traceCap,
		eventsCap: *eventsCap,
		propagate: *propagate,
		logger:    logger,
	}
	if err := run(*rosterPath, *id, *demo, *rounds, *roundDur, *epoch, *txPerRound, *seed, *stateDir, obs, retry, pool); err != nil {
		logger.Error("exiting", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

// buildLogger constructs the process logger from the -log-format flag.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// poolOptions bundles the mempool / backpressure / storage flags.
type poolOptions struct {
	mempoolShards  int
	mempoolCap     int
	admissionFloor float64
	blockLimit     int
	inflightLimit  int
	snapshotEvery  int
	segmentBytes   int64
}

// obsOptions bundles the observability flags.
type obsOptions struct {
	adminAddr string
	committee int
	traceCap  int
	eventsCap int
	propagate bool
	logger    *slog.Logger
}

func run(rosterPath, id string, demo bool, rounds int, roundDur time.Duration, epochStr string, txPerRound int, seed int64, stateDir string, obs obsOptions, retry transport.RetryPolicy, pool poolOptions) error {
	logger := obs.logger
	var deployment *transport.Deployment
	if demo {
		d, err := demoDeployment(seed)
		if err != nil {
			return err
		}
		deployment = d
	} else {
		d, err := transport.LoadDeployment(rosterPath)
		if err != nil {
			return err
		}
		deployment = d
	}

	//repchain:dettaint-ok the epoch is shared deployment config all nodes must agree on; this default only serves single-process demos, and -epoch pins it for real deployments
	epoch := time.Now().Add(time.Second)
	if epochStr != "" {
		t, err := time.Parse(time.RFC3339, epochStr)
		if err != nil {
			return fmt.Errorf("parse -epoch: %w", err)
		}
		epoch = t
	}
	clock := transport.Clock{Epoch: epoch, Round: roundDur}
	base := transport.RuntimeConfig{
		Deployment: deployment,
		Clock:      clock,
		Rounds:     rounds,
		Params:     reputation.DefaultParams(),
		Validator:  validator,
		TxPerRound: txPerRound,
		ValidFrac:  0.75,
		Seed:       seed,
		StateDir:   stateDir,
		Retry:      retry,
		Logger:     logger,

		MempoolShards:   pool.mempoolShards,
		MempoolShardCap: pool.mempoolCap,
		AdmissionFloor:  pool.admissionFloor,
		BlockLimit:      pool.blockLimit,
		InflightLimit:   pool.inflightLimit,
		SnapshotEvery:   pool.snapshotEvery,
		SegmentBytes:    pool.segmentBytes,
	}

	// One shared registry/tracer/event-log/health for the process. In
	// demo mode that aggregates the whole alliance; in single-node mode
	// readiness only tracks what this process can see — its own
	// governor height, if it is a governor at all. The tracer and
	// event log are wired even without an admin endpoint so -trace-
	// propagate works standalone; wall clocks are on because this is
	// the TCP runtime, not a deterministic simulation.
	rec := trace.NewRecorder(obs.traceCap)
	rec.EnableWallClock()
	evlog := events.NewLog(obs.eventsCap)
	evlog.EnableWallClock()
	base.Tracer = rec
	base.Events = evlog
	base.PropagateTrace = obs.propagate

	if obs.adminAddr != "" {
		governors := 0
		if demo {
			for _, spec := range deployment.Nodes {
				if spec.Role == "governor" {
					governors++
				}
			}
		} else if strings.HasPrefix(id, "governor/") {
			governors = 1
		}
		reg := metrics.NewRegistry()
		// Declare which committee's chain this node carries so
		// `repchain-inspect cluster` scores height skew within the
		// committee instead of across unrelated chains.
		reg.Gauge("chain.committee").Set(float64(obs.committee))
		var health *transport.Health
		var ready func() (bool, string)
		if governors > 0 {
			health = transport.NewHealth(governors)
			ready = health.Ready
		}
		base.Metrics = reg
		base.Health = health
		srv, err := admin.Start(admin.Config{
			Addr:       obs.adminAddr,
			Registries: []*metrics.Registry{reg},
			Tracer:     rec,
			Events:     evlog,
			Ready:      ready,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("admin endpoint up",
			slog.String("addr", srv.Addr()),
			slog.String("paths", "/metrics /healthz /readyz /traces /events /debug/pprof"))
	}

	if !demo {
		if id == "" {
			return fmt.Errorf("-id is required without -demo")
		}
		cfg := base
		cfg.ID = identity.NodeID(id)
		report, err := transport.RunNode(cfg)
		if err != nil {
			return err
		}
		logReport(logger, id, report)
		return nil
	}

	// Demo: one goroutine per node, real loopback sockets.
	logger.Info("demo alliance starting",
		slog.Int("nodes", len(deployment.Nodes)),
		slog.Int("rounds", rounds),
		slog.Duration("round", roundDur),
		slog.String("epoch", epoch.Format(time.RFC3339)))
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports = make(map[string]transport.Report)
		failed  error
	)
	for _, spec := range deployment.Nodes {
		cfg := base
		cfg.ID = identity.NodeID(spec.ID)
		wg.Add(1)
		go func(nodeID string, cfg transport.RuntimeConfig) {
			defer wg.Done()
			report, err := transport.RunNode(cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && failed == nil {
				failed = fmt.Errorf("node %s: %w", nodeID, err)
				return
			}
			reports[nodeID] = report
		}(spec.ID, cfg)
	}
	wg.Wait()
	if failed != nil {
		return failed
	}
	for _, spec := range deployment.Nodes {
		logReport(logger, spec.ID, reports[spec.ID])
	}
	return nil
}

func logReport(logger *slog.Logger, id string, r transport.Report) {
	switch r.Role {
	case "provider":
		logger.Info("provider done", slog.String("node", id),
			slog.Int("rounds", r.Rounds),
			slog.Int("submitted", r.Submitted),
			slog.Int("settled_valid", r.SettledValid),
			slog.Int("pending_valid", r.PendingValid))
	case "collector":
		logger.Info("collector done", slog.String("node", id),
			slog.Int("rounds", r.Rounds),
			slog.Int("uploads", r.Uploads))
	case "governor":
		logger.Info("governor done", slog.String("node", id),
			slog.Int("rounds", r.Rounds),
			slog.Uint64("height", r.Height),
			slog.Int("checked", r.Stats.Checked),
			slog.Int("unchecked", r.Stats.Unchecked),
			slog.Int("argues_accepted", r.Stats.ArguesAccepted))
	}
	if r.SendFailures > 0 {
		logger.Warn("multicasts degraded", slog.String("node", id),
			slog.Int("send_failures", r.SendFailures))
	}
}

// demoDeployment builds a small loopback roster with OS-assigned free
// ports.
func demoDeployment(seed int64) (*transport.Deployment, error) {
	topo, err := identity.NewRegularTopology(identity.TopologySpec{
		Providers: 4, Collectors: 4, Degree: 2,
	})
	if err != nil {
		return nil, err
	}
	seedBytes := make([]byte, crypto.SeedSize)
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(seed >> (8 * i))
	}
	im, err := identity.NewManagerFromSeed(seedBytes)
	if err != nil {
		return nil, err
	}
	roster, err := identity.RegisterAll(im, topo, 3, seedBytes)
	if err != nil {
		return nil, err
	}
	return transport.NewDeployment(im, roster, "127.0.0.1", 19701)
}
