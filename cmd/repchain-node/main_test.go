package main

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"repchain/internal/transport"
)

// quietObs builds obsOptions with a discarding logger for tests.
func quietObs(adminAddr string, traceCap int) obsOptions {
	return obsOptions{
		adminAddr: adminAddr,
		traceCap:  traceCap,
		eventsCap: traceCap,
		logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// TestDemoAlliance runs the full loopback demo: 11 nodes over real TCP
// sockets for 2 rounds.
func TestDemoAlliance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock demo")
	}
	if err := run("", "", true, 2, 800*time.Millisecond, "", 2, 99, "", quietObs("127.0.0.1:0", 1024), transport.RetryPolicy{}, poolOptions{}); err != nil {
		t.Fatalf("demo run error = %v", err)
	}
}

func TestRunRequiresID(t *testing.T) {
	// Without -demo, -id is mandatory; with a missing roster the
	// loader must fail first.
	if err := run("/nonexistent/roster.json", "governor/0", false, 1, time.Second, "", 1, 1, "", quietObs("", 0), transport.RetryPolicy{}, poolOptions{}); err == nil {
		t.Fatal("missing roster accepted")
	}
}

func TestRunRejectsBadEpoch(t *testing.T) {
	if err := run("", "", true, 1, time.Second, "not-a-time", 1, 1, "", quietObs("", 0), transport.RetryPolicy{}, poolOptions{}); err == nil {
		t.Fatal("bad epoch accepted")
	}
}
