// Command repchain-sim runs a configurable policy-level simulation of
// the reputation mechanism and prints the aggregate metrics — the fast
// harness behind the statistical experiments.
//
// Usage:
//
//	repchain-sim -t 100000 -f 0.7 -liars 3
//	repchain-sim -policy uniform-random -t 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"repchain/internal/identity"
	"repchain/internal/reputation"
	"repchain/internal/rwm"
	"repchain/internal/sim"
)

func main() {
	var (
		t          = flag.Int("t", 50_000, "number of transactions")
		providers  = flag.Int("providers", 4, "providers (l)")
		collectors = flag.Int("collectors", 8, "collectors (n)")
		degree     = flag.Int("degree", 8, "collectors per provider (r)")
		policy     = flag.String("policy", "reputation-rwm", "screening policy: reputation-rwm, check-all, uniform-random, majority-vote")
		beta       = flag.Float64("beta", 0, "β weight decay; 0 = paper's recommendation for T")
		f          = flag.Float64("f", 0.5, "efficiency parameter f")
		validFrac  = flag.Float64("valid", 0.6, "fraction of valid transactions")
		liars      = flag.Int("liars", 2, "collectors that always misreport")
		concealers = flag.Int("concealers", 1, "collectors that conceal 50% of transactions")
		argueProb  = flag.Float64("argue", 1, "probability an unchecked valid tx is argued")
		delay      = flag.Int("reveal-delay", 0, "argue latency U in unchecked transactions")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*t, *providers, *collectors, *degree, *policy, *beta, *f,
		*validFrac, *liars, *concealers, *argueProb, *delay, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "repchain-sim:", err)
		os.Exit(1)
	}
}

func run(t, providers, collectors, degree int, policy string, beta, f, validFrac float64,
	liars, concealers int, argueProb float64, delay int, seed int64) error {
	if liars+concealers >= collectors {
		return fmt.Errorf("%d liars + %d concealers leave no honest collector among %d", liars, concealers, collectors)
	}
	if beta == 0 {
		beta = rwm.RecommendedBeta(degree, t)
	}
	models := make([]sim.CollectorModel, collectors)
	for i := 0; i < liars; i++ {
		models[collectors-1-i].Misreport = 1
	}
	for i := 0; i < concealers; i++ {
		models[1+i].Conceal = 0.5
	}
	params := reputation.DefaultParams()
	params.Beta = beta
	params.F = f
	s, err := sim.New(sim.Config{
		Spec:        identity.TopologySpec{Providers: providers, Collectors: collectors, Degree: degree},
		Params:      params,
		Policy:      policy,
		Models:      models,
		ValidFrac:   validFrac,
		ArgueProb:   argueProb,
		RevealDelay: delay,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	res, err := s.Run(t)
	if err != nil {
		return err
	}

	fmt.Printf("policy            %s\n", policy)
	fmt.Printf("topology          l=%d n=%d r=%d (s=%d)\n", providers, collectors, degree,
		providers*degree/collectors)
	fmt.Printf("params            beta=%.3f f=%.2f valid=%.2f liars=%d concealers=%d U=%d\n",
		beta, f, validFrac, liars, concealers, delay)
	fmt.Printf("transactions      %d (%d unreported)\n", res.Transactions, res.Unreported)
	fmt.Printf("checked           %d (%.1f%%)\n", res.Checked, 100*res.CheckFrac)
	fmt.Printf("unchecked         %d (%.1f%%, Lemma 2 bound f=%.0f%%)\n",
		res.Unchecked, 100*res.UncheckedFrac, 100*f)
	fmt.Printf("governor mistakes %d (loss %.0f)\n", res.Mistakes, res.Loss)
	if res.Regret != nil {
		bound := rwm.TheoremOneBound(degree, t/providers)
		fmt.Printf("expected loss L_T %.1f\n", res.ExpectedLoss)
		for k, r := range res.Regret {
			fmt.Printf("provider %-3d      regret %.1f (best collector loss %.1f, Theorem 1 bound %.0f)\n",
				k, r, res.BestLoss[k], bound)
		}
		fmt.Printf("revenue shares    ")
		for _, sh := range res.RevenueShares {
			fmt.Printf("%.3f ", sh)
		}
		fmt.Println()
	}
	return nil
}
