package main

import "testing"

func TestRunAllPolicies(t *testing.T) {
	for _, policy := range []string{"reputation-rwm", "check-all", "uniform-random", "majority-vote"} {
		t.Run(policy, func(t *testing.T) {
			err := run(2000, 2, 8, 8, policy, 0, 0.5, 0.6, 2, 1, 1, 0, 1)
			if err != nil {
				t.Fatalf("run(%s) error = %v", policy, err)
			}
		})
	}
}

func TestRunRejectsAllAdversarial(t *testing.T) {
	// liars + concealers covering every collector must be rejected.
	if err := run(100, 1, 4, 4, "reputation-rwm", 0, 0.5, 0.5, 3, 1, 1, 0, 1); err == nil {
		t.Fatal("run() accepted a fully adversarial collector set")
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	if err := run(100, 1, 4, 4, "nope", 0, 0.5, 0.5, 1, 0, 1, 0, 1); err == nil {
		t.Fatal("run() accepted an unknown policy")
	}
}

func TestRunExplicitBeta(t *testing.T) {
	if err := run(500, 1, 4, 4, "reputation-rwm", 0.5, 0.5, 0.5, 1, 0, 1, 16, 1); err != nil {
		t.Fatalf("run() error = %v", err)
	}
}
