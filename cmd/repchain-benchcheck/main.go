// Command repchain-benchcheck is the bench-regression gate (DESIGN.md
// §4f). It parses the `go test -json` stream that `make bench-round`
// writes to BENCH_round.json, extracts every benchmark result line
// (name, ns/op, allocs/op, and custom metrics such as tx/s and
// sig-checks/tx), and compares it against the checked-in
// BENCH_baseline.json:
//
//   - allocs/op may not grow beyond baseline·(1+allocs-tol)+allocs-slack
//     — a hard, machine-independent gate (allocation counts do not
//     depend on CPU speed);
//   - tx/s may not regress below baseline·(1−txs-tol) — hardware-
//     dependent, so the tolerance is a flag and the baseline documents
//     the machine it was captured on;
//   - ns/op is reported for context but never gates (it is just the
//     inverse of tx/s where that metric exists, and pure noise across
//     runner generations where it does not);
//   - a benchmark present in the baseline but missing from the current
//     run fails — silently dropping a benchmark would erode the gate;
//   - the baseline may pin ns/op *ratios* between two benchmarks of the
//     same run ("slow" must be at least Min× "fast"). Ratios compare
//     two numbers captured on the same machine in the same run, so they
//     are hardware-independent and gate hard — the reopen-latency gate
//     (snapshot recovery must beat full replay by ≥10×) lives here.
//
// Usage:
//
//	repchain-benchcheck -baseline BENCH_baseline.json -current BENCH_round.json
//	repchain-benchcheck -current BENCH_round.json -baseline BENCH_baseline.json -update
//
// The -update mode rewrites the baseline from the current run; commit
// the result when a PR intentionally shifts performance (see README
// "Benchmark gate").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event stream we need.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// baselineFile is the checked-in BENCH_baseline.json shape.
type baselineFile struct {
	// Machine documents where the baseline numbers were captured; it is
	// informational and never compared.
	Machine string `json:"machine,omitempty"`
	// Benchtime is the -benchtime the baseline was captured at. The
	// check refuses to compare runs captured at a different benchtime:
	// sync.Pool and cache warm-up make 1-iteration numbers incomparable
	// to steady-state ones.
	Benchtime string `json:"benchtime,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its metric values, e.g. {"ns/op": 1.2e6, "allocs/op": 340}.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	// Ratios pins minimum ns/op ratios between benchmark pairs of the
	// current run. They are hand-written, survive -update, and fail the
	// check when either side is missing.
	Ratios []ratioGate `json:"ratios,omitempty"`
}

// ratioGate bounds the cur[Slow].ns/op / cur[Fast].ns/op ratio: Min
// requires the Fast benchmark to beat the Slow one by at least Min×
// (speedup gates, e.g. snapshot recovery vs replay), Max caps how much
// slower Slow may be (overhead gates, e.g. tracing-on vs tracing-off).
// Either bound may be zero to disable it.
type ratioGate struct {
	// Slow and Fast are benchmark names as they appear in the run
	// (GOMAXPROCS suffix stripped).
	Slow string `json:"slow"`
	Fast string `json:"fast"`
	// Min is the minimum allowed Slow/Fast ns/op ratio (0 = no floor).
	Min float64 `json:"min,omitempty"`
	// Max is the maximum allowed Slow/Fast ns/op ratio (0 = no cap).
	Max float64 `json:"max,omitempty"`
	// MinProcs makes the bounds informational when the run's GOMAXPROCS
	// (the -N benchmark-name suffix) is below it. Parallel-scaling gates
	// (committees=4 must beat committees=1) are meaningless on a
	// single-core runner, but must still gate hard where the cores
	// exist. Zero enforces unconditionally. Missing-benchmark erosion
	// always fails regardless — the benchmarks themselves run anywhere.
	MinProcs int `json:"minprocs,omitempty"`
	// Note documents what the ratio protects; informational.
	Note string `json:"note,omitempty"`
}

// parseBenchJSON reads a `go test -json` stream and returns the metric
// map per benchmark. Benchmark names and their result fields arrive as
// separate Output events (the test binary prints the name, runs, then
// appends the numbers), so output is re-assembled per package before
// line parsing. The second return is the largest GOMAXPROCS suffix
// seen on any result line (1 when names carry none) — ratio gates with
// MinProcs consult it to decide whether they enforce or inform.
func parseBenchJSON(path string) (map[string]map[string]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	perPkg := make(map[string]*strings.Builder)
	var pkgs []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, 0, fmt.Errorf("%s: not a go test -json stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			pkgs = append(pkgs, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}

	// A benchmark appearing several times in the stream (-count > 1, or
	// a second targeted invocation appended by make bench-round) is
	// averaged per metric: ratio gates on noisy wall-clock numbers are
	// far more stable on a mean of temporally adjacent samples than on
	// any single run.
	sums := make(map[string]map[string]float64)
	counts := make(map[string]map[string]float64)
	procs := 1
	for _, pkg := range pkgs {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			name, p, metrics, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if p > procs {
				procs = p
			}
			if sums[name] == nil {
				sums[name] = make(map[string]float64)
				counts[name] = make(map[string]float64)
			}
			for unit, v := range metrics {
				sums[name][unit] += v
				counts[name][unit]++
			}
		}
	}
	if len(sums) == 0 {
		return nil, 0, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	out := make(map[string]map[string]float64, len(sums))
	for name, m := range sums {
		avg := make(map[string]float64, len(m))
		for unit, sum := range m {
			avg[unit] = sum / counts[name][unit]
		}
		out[name] = avg
	}
	return out, procs, nil
}

// parseBenchLine parses one textual benchmark result line:
//
//	BenchmarkFoo/sub=1-4   100   123 ns/op   7 allocs/op   9.5 tx/s
//
// i.e. name, iteration count, then (value, unit) pairs. The trailing
// -N GOMAXPROCS suffix is stripped from the name so baselines survive
// runner-core-count changes; its value is returned separately (1 when
// absent) for the MinProcs ratio-gate policy.
func parseBenchLine(line string) (string, int, map[string]float64, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", 0, nil, false // "Benchmark... results" summary or log noise
	}
	name := stripProcsSuffix(fields[0])
	procs := 1
	if name != fields[0] {
		if p, err := strconv.Atoi(fields[0][len(name)+1:]); err == nil && p > 0 {
			procs = p
		}
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", 0, nil, false
	}
	return name, procs, metrics, true
}

// stripProcsSuffix removes a trailing "-N" (GOMAXPROCS) from a
// benchmark name, but only from the last path segment so sub-bench
// names like "m=512" survive intact.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.ParseInt(name[i+1:], 10, 64); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline file")
		currentPath  = flag.String("current", "BENCH_round.json", "go test -json stream from make bench-round")
		update       = flag.Bool("update", false, "rewrite the baseline from the current run instead of checking")
		benchtime    = flag.String("benchtime", "1s", "benchtime the run was captured at (recorded in / matched against the baseline)")
		machine      = flag.String("machine", "", "with -update: free-form note on the capture machine")
		txsTol       = flag.Float64("txs-tol", 0.10, "allowed fractional tx/s regression (0.10 = -10%)")
		allocsTol    = flag.Float64("allocs-tol", 0.10, "allowed fractional allocs/op growth")
		allocsSlack  = flag.Float64("allocs-slack", 8, "absolute allocs/op slack on top of allocs-tol (absorbs ±1-alloc jitter on tiny counts)")
	)
	flag.Parse()

	cur, procs, err := parseBenchJSON(*currentPath)
	if err != nil {
		fatal(err)
	}
	if *update {
		// Ratio gates are hand-written policy, not measurements: carry
		// them over from the existing baseline so -update cannot erode
		// them.
		var ratios []ratioGate
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			var old baselineFile
			if err := json.Unmarshal(raw, &old); err == nil {
				ratios = old.Ratios
			}
		}
		if err := writeBaseline(*baselinePath, cur, ratios, *benchtime, *machine); err != nil {
			fatal(err)
		}
		fmt.Printf("repchain-benchcheck: wrote %s (%d benchmarks, %d ratio gates, benchtime %s)\n",
			*baselinePath, len(cur), len(ratios), *benchtime)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	if base.Benchtime != "" && base.Benchtime != *benchtime {
		fatal(fmt.Errorf("baseline captured at -benchtime %s but current run claims %s; rerun make bench-round with BENCHTIME=%s or refresh the baseline",
			base.Benchtime, *benchtime, base.Benchtime))
	}

	failures := check(base.Benchmarks, cur, *txsTol, *allocsTol, *allocsSlack)
	failures = append(failures, checkRatios(base.Ratios, cur, procs)...)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "repchain-benchcheck: %d regression(s) against %s\n", len(failures), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("repchain-benchcheck: %d benchmarks within tolerance of %s (%d ratio gates)\n",
		len(base.Benchmarks), *baselinePath, len(base.Ratios))
}

// checkRatios enforces the baseline's ns/op ratio gates against the
// current run. Both sides must be present — a ratio whose benchmark
// vanished is gate erosion, not a pass, and that holds even below
// MinProcs (the benchmarks run on any core count; only the ratio's
// value needs the parallelism). A bound violated while procs <
// MinProcs is reported as info, not a failure.
func checkRatios(ratios []ratioGate, cur map[string]map[string]float64, procs int) []string {
	var failures []string
	for _, r := range ratios {
		slow, okS := cur[r.Slow]["ns/op"]
		fast, okF := cur[r.Fast]["ns/op"]
		enforce := procs >= r.MinProcs
		switch {
		case !okS:
			failures = append(failures, fmt.Sprintf(
				"ratio %s / %s: %s missing ns/op in current run (gate erosion)", r.Slow, r.Fast, r.Slow))
		case !okF:
			failures = append(failures, fmt.Sprintf(
				"ratio %s / %s: %s missing ns/op in current run (gate erosion)", r.Slow, r.Fast, r.Fast))
		case fast <= 0:
			failures = append(failures, fmt.Sprintf(
				"ratio %s / %s: non-positive fast ns/op %g", r.Slow, r.Fast, fast))
		case r.Min > 0 && slow/fast < r.Min:
			if !enforce {
				fmt.Printf("info: ratio %s / %s = %.2fx below %.1fx, not enforced at GOMAXPROCS %d < %d (%s)\n",
					r.Slow, r.Fast, slow/fast, r.Min, procs, r.MinProcs, r.Note)
				break
			}
			failures = append(failures, fmt.Sprintf(
				"ratio %s / %s = %.1fx below required %.1fx (%s)",
				r.Slow, r.Fast, slow/fast, r.Min, r.Note))
		case r.Max > 0 && slow/fast > r.Max:
			if !enforce {
				fmt.Printf("info: ratio %s / %s = %.2fx above %.2fx, not enforced at GOMAXPROCS %d < %d (%s)\n",
					r.Slow, r.Fast, slow/fast, r.Max, procs, r.MinProcs, r.Note)
				break
			}
			failures = append(failures, fmt.Sprintf(
				"ratio %s / %s = %.2fx above allowed %.2fx (%s)",
				r.Slow, r.Fast, slow/fast, r.Max, r.Note))
		default:
			fmt.Printf("info: ratio %s / %s = %.2fx (min %g, max %g)\n",
				r.Slow, r.Fast, slow/fast, r.Min, r.Max)
		}
	}
	return failures
}

// check applies the gates and returns human-readable failures.
// Informational drift (ns/op, new benchmarks) goes straight to stdout.
func check(base, cur map[string]map[string]float64, txsTol, allocsTol, allocsSlack float64) []string {
	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: present in baseline but missing from current run (gate erosion)", name))
			continue
		}
		if bAllocs, ok := b["allocs/op"]; ok {
			if cAllocs, ok := c["allocs/op"]; ok {
				limit := bAllocs*(1+allocsTol) + allocsSlack
				if cAllocs > limit {
					failures = append(failures, fmt.Sprintf(
						"%s: allocs/op %.0f exceeds limit %.1f (baseline %.0f, tol %.0f%% + %.0f slack)",
						name, cAllocs, limit, bAllocs, allocsTol*100, allocsSlack))
				}
			}
		}
		if bTxs, ok := b["tx/s"]; ok && bTxs > 0 {
			if cTxs, ok := c["tx/s"]; ok {
				floor := bTxs * (1 - txsTol)
				if cTxs < floor {
					failures = append(failures, fmt.Sprintf(
						"%s: tx/s %.0f below floor %.0f (baseline %.0f, tol %.0f%%)",
						name, cTxs, floor, bTxs, txsTol*100))
				}
			}
		}
		if bNs, ok := b["ns/op"]; ok && bNs > 0 {
			if cNs, ok := c["ns/op"]; ok {
				fmt.Printf("info: %s ns/op %.0f vs baseline %.0f (%+.1f%%)\n",
					name, cNs, bNs, (cNs/bNs-1)*100)
			}
		}
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("info: %s not in baseline (run make bench-baseline to adopt it)\n", name)
		}
	}
	return failures
}

func writeBaseline(path string, cur map[string]map[string]float64, ratios []ratioGate, benchtime, machine string) error {
	out := baselineFile{Machine: machine, Benchtime: benchtime, Benchmarks: cur, Ratios: ratios}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repchain-benchcheck:", err)
	os.Exit(1)
}
