package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, procs, m, ok := parseBenchLine(
		"BenchmarkFullProtocolRound/workers=1-4 \t     100\t  1234567 ns/op\t 0.67 cache-hit-rate\t 912 tx/s\t 340 allocs/op")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if name != "BenchmarkFullProtocolRound/workers=1" {
		t.Fatalf("name %q: GOMAXPROCS suffix not stripped", name)
	}
	if procs != 4 {
		t.Fatalf("procs = %d, want 4 from the -4 suffix", procs)
	}
	if m["ns/op"] != 1234567 || m["tx/s"] != 912 || m["allocs/op"] != 340 || m["cache-hit-rate"] != 0.67 {
		t.Fatalf("metrics %v", m)
	}

	// Sub-bench names carrying their own -N must keep it.
	name, _, _, ok = parseBenchLine("BenchmarkVerifyBatch/m=512-4 \t 50 \t 99 ns/op")
	if !ok || name != "BenchmarkVerifyBatch/m=512" {
		t.Fatalf("got %q, %v", name, ok)
	}

	// No GOMAXPROCS suffix at all: procs defaults to 1.
	_, procs, _, ok = parseBenchLine("BenchmarkPlain \t 50 \t 99 ns/op")
	if !ok || procs != 1 {
		t.Fatalf("suffixless line: procs=%d ok=%v, want 1 true", procs, ok)
	}

	for _, bad := range []string{
		"",
		"PASS",
		"ok  \trepchain\t1.2s",
		"BenchmarkFoo results pending", // non-numeric iteration count
		"--- BENCH: BenchmarkFoo-4",
	} {
		if _, _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("line %q parsed as a result", bad)
		}
	}
}

// TestParseBenchJSONReassembly checks that a benchmark name and its
// numbers arriving as separate Output events (how go test -json
// actually streams them) are stitched back together.
func TestParseBenchJSONReassembly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "round.json")
	stream := strings.Join([]string{
		`{"Action":"start","Package":"repchain"}`,
		`{"Action":"output","Package":"repchain","Output":"BenchmarkFullProtocolRound/workers=1-4         \t"}`,
		`{"Action":"output","Package":"repchain","Output":"     100\t  5000000 ns/op\t 640 tx/s\t 300 allocs/op\n"}`,
		`{"Action":"output","Package":"repchain/internal/crypto","Output":"BenchmarkVerifyBatch/m=8-4 \t 1000\t 80000 ns/op\t 12 allocs/op\n"}`,
		`{"Action":"pass","Package":"repchain"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, procs, err := parseBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if procs != 4 {
		t.Fatalf("procs = %d, want 4 from the -4 suffixes", procs)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkFullProtocolRound/workers=1"]["tx/s"] != 640 {
		t.Fatalf("split result line not reassembled: %v", got)
	}
	if got["BenchmarkVerifyBatch/m=8"]["allocs/op"] != 12 {
		t.Fatalf("crypto package result lost: %v", got)
	}
}

// TestParseBenchJSONAveragesRepeats checks that a benchmark appearing
// several times in the stream (-count > 1, or an appended re-run) is
// reduced to the per-metric mean rather than last-sample-wins.
func TestParseBenchJSONAveragesRepeats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "round.json")
	stream := strings.Join([]string{
		`{"Action":"output","Package":"repchain","Output":"BenchmarkFullProtocolRound/workers=1-4 \t 100\t 1000 ns/op\t 600 tx/s\n"}`,
		`{"Action":"output","Package":"repchain","Output":"BenchmarkFullProtocolRound/workers=1-4 \t 100\t 3000 ns/op\t 800 tx/s\n"}`,
		`{"Action":"output","Package":"repchain","Output":"BenchmarkFullProtocolRound/workers=1-4 \t 100\t 2000 ns/op\n"}`,
	}, "\n")
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, err := parseBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkFullProtocolRound/workers=1"]
	if m["ns/op"] != 2000 {
		t.Fatalf("ns/op mean = %v, want 2000", m["ns/op"])
	}
	// tx/s appeared on only two of the three lines: mean over two.
	if m["tx/s"] != 700 {
		t.Fatalf("tx/s mean = %v, want 700", m["tx/s"])
	}
}

func TestCheckGates(t *testing.T) {
	base := map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "allocs/op": 100, "tx/s": 1000},
		"BenchmarkB": {"ns/op": 500, "allocs/op": 4},
	}
	ok := map[string]map[string]float64{
		// +10% allocs and -10% tx/s sit exactly on the boundary: pass.
		"BenchmarkA": {"ns/op": 2000, "allocs/op": 110, "tx/s": 900},
		// Small absolute growth on a tiny count is absorbed by the slack.
		"BenchmarkB": {"ns/op": 400, "allocs/op": 9},
	}
	if f := check(base, ok, 0.10, 0.10, 8); len(f) != 0 {
		t.Fatalf("boundary run failed: %v", f)
	}

	bad := map[string]map[string]float64{
		"BenchmarkA": {"ns/op": 1000, "allocs/op": 200, "tx/s": 500},
	}
	f := check(base, bad, 0.10, 0.10, 8)
	if len(f) != 3 {
		t.Fatalf("got %d failures, want allocs + tx/s + missing BenchmarkB: %v", len(f), f)
	}
	joined := strings.Join(f, "\n")
	for _, want := range []string{"allocs/op 200", "tx/s 500", "missing from current run"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("failures %v missing %q", f, want)
		}
	}
}

func TestCheckRatios(t *testing.T) {
	cur := map[string]map[string]float64{
		"BenchmarkStoreReopen/height=100000/mode=replay":   {"ns/op": 60e6},
		"BenchmarkStoreReopen/height=100000/mode=snapshot": {"ns/op": 2e6},
	}
	pass := []ratioGate{{
		Slow: "BenchmarkStoreReopen/height=100000/mode=replay",
		Fast: "BenchmarkStoreReopen/height=100000/mode=snapshot",
		Min:  10,
	}}
	if f := checkRatios(pass, cur, 1); len(f) != 0 {
		t.Fatalf("30x run failed a 10x gate: %v", f)
	}

	tight := []ratioGate{{Slow: pass[0].Slow, Fast: pass[0].Fast, Min: 50, Note: "reopen"}}
	f := checkRatios(tight, cur, 1)
	if len(f) != 1 || !strings.Contains(f[0], "below required 50.0x") {
		t.Fatalf("30x run passed a 50x gate: %v", f)
	}

	// Max caps overhead: a 30x ratio passes max=35 but fails max=20.
	overhead := []ratioGate{{Slow: pass[0].Slow, Fast: pass[0].Fast, Max: 35}}
	if f := checkRatios(overhead, cur, 1); len(f) != 0 {
		t.Fatalf("30x run failed a max=35 cap: %v", f)
	}
	capped := []ratioGate{{Slow: pass[0].Slow, Fast: pass[0].Fast, Max: 20, Note: "tracing overhead"}}
	f = checkRatios(capped, cur, 1)
	if len(f) != 1 || !strings.Contains(f[0], "above allowed 20.00x") {
		t.Fatalf("30x run passed a max=20 cap: %v", f)
	}

	// Either side missing from the run is gate erosion, not a pass.
	for _, gone := range []string{pass[0].Slow, pass[0].Fast} {
		trimmed := map[string]map[string]float64{}
		for k, v := range cur {
			if k != gone {
				trimmed[k] = v
			}
		}
		f := checkRatios(pass, trimmed, 1)
		if len(f) != 1 || !strings.Contains(f[0], "gate erosion") {
			t.Fatalf("missing %s not flagged: %v", gone, f)
		}
	}
}

// TestCheckRatiosMinProcs covers parallel-scaling gates: below MinProcs
// a violated bound is informational, at or above it the bound gates
// hard, and missing benchmarks fail regardless of core count.
func TestCheckRatiosMinProcs(t *testing.T) {
	// committees=4 only 1.2x faster than committees=1: fails a 2x floor.
	cur := map[string]map[string]float64{
		"BenchmarkFullProtocolRound/committees=1": {"ns/op": 12e6},
		"BenchmarkFullProtocolRound/committees=4": {"ns/op": 10e6},
	}
	scaling := []ratioGate{{
		Slow:     "BenchmarkFullProtocolRound/committees=1",
		Fast:     "BenchmarkFullProtocolRound/committees=4",
		Min:      2,
		MinProcs: 2,
		Note:     "committee scaling",
	}}
	if f := checkRatios(scaling, cur, 1); len(f) != 0 {
		t.Fatalf("single-core run failed a minprocs=2 gate: %v", f)
	}
	f := checkRatios(scaling, cur, 4)
	if len(f) != 1 || !strings.Contains(f[0], "below required 2.0x") {
		t.Fatalf("multi-core run passed a violated minprocs gate: %v", f)
	}

	// Gate erosion is not excused by a low core count.
	delete(cur, "BenchmarkFullProtocolRound/committees=4")
	f = checkRatios(scaling, cur, 1)
	if len(f) != 1 || !strings.Contains(f[0], "gate erosion") {
		t.Fatalf("missing benchmark not flagged below minprocs: %v", f)
	}
}

// TestUpdatePreservesRatios writes a baseline with a ratio gate,
// rewrites it via writeBaseline with ratios carried over (the -update
// path), and checks the gate survived the round trip.
func TestUpdatePreservesRatios(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	ratios := []ratioGate{{Slow: "BenchmarkA", Fast: "BenchmarkB", Min: 10, Note: "reopen gate"}}
	cur := map[string]map[string]float64{"BenchmarkA": {"ns/op": 100}}
	if err := writeBaseline(path, cur, ratios, "1s", "test"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got baselineFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Ratios) != 1 || got.Ratios[0] != ratios[0] {
		t.Fatalf("ratios did not survive rewrite: %+v", got.Ratios)
	}
	if got.Benchmarks["BenchmarkA"]["ns/op"] != 100 {
		t.Fatalf("benchmarks lost: %+v", got.Benchmarks)
	}
}
